"""Preemptive priority CPU with quantum round-robin and context-switch cost.

The CPU serves three bands (see :mod:`repro.ossim.task`):

* ``BAND_IRQ`` — interrupt work; runs to completion, preempts lower bands
  immediately (this is the "system-level asynchrony" the paper names as
  the reason middleware cannot account for kernel resource usage);
* ``BAND_KERNEL`` — kernel daemons;
* ``BAND_USER`` — user tasks, time-sliced round-robin.

Work is submitted as ``(task, seconds, mode)`` items; the returned
waitable triggers with a ``(start, end)`` tuple when the cumulative grant
reaches the requested amount, letting callers backfill precise per-layer
event timestamps for contiguous segments.
"""

from collections import deque

from repro.sim.engine import Waitable
from repro.sim.errors import Interrupt
from repro.sim.resources import Gate
from repro.ossim.task import BAND_IRQ, TASK_READY, TASK_RUNNING
from repro.ossim import tracepoints as tp

_EPSILON = 1e-12


class WorkItem:
    __slots__ = (
        "task", "remaining", "total", "mode", "band", "done",
        "started_at", "submitted_at", "attribution",
    )

    def __init__(self, task, amount, mode, band, done, submitted_at, attribution):
        self.task = task
        self.remaining = amount
        self.total = amount
        self.mode = mode
        self.band = band
        self.done = done
        self.started_at = None
        self.submitted_at = submitted_at
        # Ledger category tag: None (default by task/mode), a category
        # string, or ((category, seconds), ...) pairs summing to amount.
        self.attribution = attribution


class Cpu:
    """A single core; the paper's testbed nodes were uniprocessors."""

    __slots__ = (
        "sim", "kernel", "costs", "index", "_queues", "_wakeup",
        "_running", "_last_task", "busy_time", "mode_time",
        "ctx_switch_count", "cpu_set", "_proc",
    )

    def __init__(self, sim, kernel, costs, index=0):
        self.sim = sim
        self.kernel = kernel
        self.costs = costs
        self.index = index
        self._queues = (deque(), deque(), deque())
        self._wakeup = Gate(sim)
        self._running = None
        self._last_task = None
        self.busy_time = 0.0
        self.mode_time = {"user": 0.0, "kernel": 0.0, "ctx": 0.0}
        self.ctx_switch_count = 0
        self.cpu_set = None  # populated when this core belongs to a CpuSet
        self._proc = sim.process(
            self._loop(), name="cpu{}@{}".format(index, kernel.name)
        )

    # ------------------------------------------------------------------

    def submit(self, task, amount, mode="user", band=None, attribution=None):
        """Request ``amount`` seconds of CPU; returns a waitable -> (start, end).

        ``attribution`` tags the charge for the observability ledger
        (see :class:`WorkItem`); it is pure bookkeeping and never
        affects scheduling.
        """
        if amount < 0:
            raise ValueError("negative CPU demand: {}".format(amount))
        if band is None:
            band = task.band if task is not None else BAND_IRQ
        done = Waitable(self.sim)
        if amount <= _EPSILON:
            done.succeed((self.sim.now, self.sim.now))
            return done
        item = WorkItem(task, amount, mode, band, done, self.sim.now, attribution)
        self._queues[band].append(item)
        running = self._running
        if running is None:
            self._wakeup.fire()
        elif band < running.band:
            self._proc.interrupt("preempt")
        return done

    @property
    def run_queue_length(self):
        return sum(len(q) for q in self._queues) + (1 if self._running else 0)

    def utilization(self, now):
        return self.busy_time / now if now > 0 else 0.0

    # ------------------------------------------------------------------

    def _pick(self):
        for queue in self._queues:
            if queue:
                return queue.popleft()
        return None

    def _loop(self):
        sim = self.sim
        costs = self.costs
        while True:
            item = self._pick()
            if item is None and self.cpu_set is not None:
                item = self.cpu_set.steal(self)
            if item is None:
                self._running = None
                try:
                    yield self._wakeup.wait()
                except Interrupt:
                    pass  # spurious: preempt landed after the slice ended
                continue

            self._running = item
            overhead = 0.0
            if item.task is not None and item.task is not self._last_task:
                overhead = costs.context_switch
                overhead += self.kernel.tracepoints.cost(tp.SCHED_SWITCH)
                self._fire_switch(self._last_task, item.task)
                self._last_task = item.task
                self.ctx_switch_count += 1
                item.task.ctx_switches += 1

            if item.task is not None:
                item.task.state = TASK_RUNNING
            if item.started_at is None:
                item.started_at = sim.now + overhead

            slice_target = item.remaining
            if item.band != BAND_IRQ:
                slice_target = min(costs.quantum, item.remaining)

            start = sim.now
            preempted = False
            full_overhead = overhead
            try:
                yield sim.timeout(overhead + slice_target)
                ran = slice_target
            except Interrupt:
                elapsed = sim.now - start
                ran = max(0.0, elapsed - overhead)
                overhead = min(overhead, elapsed)
                preempted = True

            self.busy_time += ran + overhead
            self.mode_time["ctx"] += overhead
            self.mode_time["user" if item.mode == "user" else "kernel"] += ran
            if item.task is not None:
                item.task.charge(item.mode, ran)
            ledger = self.kernel.ledger
            if ledger is not None and (ran > 0.0 or overhead > 0.0):
                self._attribute(ledger, item, ran, overhead, full_overhead)

            item.remaining -= ran
            if item.remaining <= _EPSILON:
                if item.task is not None and item.task.state == TASK_RUNNING:
                    item.task.state = TASK_READY
                item.done.succeed((item.started_at, sim.now))
            elif preempted:
                self._queues[item.band].appendleft(item)
            else:
                self._queues[item.band].append(item)
                if item.task is not None and item.task.state == TASK_RUNNING:
                    item.task.state = TASK_READY

    def _attribute(self, ledger, item, ran, overhead, full_overhead):
        """Hand the exact seconds just added to ``busy_time`` to the
        attribution ledger, split by category.

        Host-side bookkeeping only — no simulated state is touched.  The
        pieces are constructed so they sum to ``ran + overhead`` exactly
        (remainders land on the final share), keeping per-node ledger
        totals equal to ``busy_time`` bit-for-bit.
        """
        node = self.kernel.name
        task = item.task
        sticky = task.category if task is not None else None
        if overhead > 0.0:
            # Context-switch overhead: the sched_switch probe/analyzer
            # portion is monitoring cost; the base switch is charged to
            # whoever caused the switch (the incoming item's category).
            probe, analyzer = self.kernel.tracepoints.cost_split(tp.SCHED_SWITCH)
            monitoring = probe + analyzer
            if monitoring > 0.0 and overhead < full_overhead and full_overhead > 0.0:
                scale = overhead / full_overhead  # truncated by an interrupt
                probe *= scale
                analyzer *= scale
                monitoring = probe + analyzer
            if monitoring > overhead:  # subscriptions changed mid-slice
                probe = min(probe, overhead)
                analyzer = overhead - probe
                monitoring = overhead
            ledger.charge(node, sticky or "workload", overhead - monitoring)
            if monitoring > 0.0:
                ledger.charge(node, "probe", probe)
                ledger.charge(node, "analyzer", analyzer)
        if ran <= 0.0:
            return
        attribution = item.attribution
        if attribution is None:
            ledger.charge(node, sticky or "workload", ran)
        elif attribution.__class__ is str:
            ledger.charge(node, sticky or attribution, ran)
        else:
            # Composite charge: scale each (category, seconds) pair to
            # this slice; only the first (base) pair yields to the
            # task's sticky category.  The float remainder goes to the
            # last *nonzero* pair so zero-cost monitoring pairs never
            # pick up a stray -0.0.
            scale = ran / item.total if item.total > 0.0 else 0.0
            last = 0
            for index in range(len(attribution) - 1, -1, -1):
                if attribution[index][1] > 0.0:
                    last = index
                    break
            charged = 0.0
            for index, (category, seconds) in enumerate(attribution):
                if index == 0 and sticky is not None:
                    category = sticky
                if index == last:
                    continue
                amount = seconds * scale
                charged += amount
                if amount != 0.0:
                    ledger.charge(node, category, amount)
            category = attribution[last][0]
            if last == 0 and sticky is not None:
                category = sticky
            ledger.charge(node, category, ran - charged)

    def _fire_switch(self, prev, nxt):
        self.kernel.tracepoints.fire(
            tp.SCHED_SWITCH,
            prev_pid=prev.pid if prev is not None else 0,
            prev_name=prev.name if prev is not None else "swapper",
            next_pid=nxt.pid,
            next_name=nxt.name,
        )


class CpuSet:
    """SMP: several cores behind one submission interface.

    The paper's testbed was uniprocessor, but its conclusion anticipates
    multi-core: "it won't be unusual to have a core dedicated to the
    analysis of the services that run on that platform".  The set routes:

    * interrupt work (``task is None``) to core 0, as commodity kernels
      default to;
    * pinned tasks (``task.affinity`` set) to their core;
    * everything else to the shortest run queue (deterministic
      tie-break by core index) — a simple load-balancing placement with
      per-burst migration.

    Aggregated accounting keeps the rest of the kernel (and SysProf's
    node statistics) oblivious to the core count.
    """

    __slots__ = ("sim", "kernel", "costs", "cores", "steals")

    def __init__(self, sim, kernel, costs, count):
        if count < 1:
            raise ValueError("a node needs at least one CPU")
        self.sim = sim
        self.kernel = kernel
        self.costs = costs
        self.cores = [Cpu(sim, kernel, costs, index=i) for i in range(count)]
        for core in self.cores:
            core.cpu_set = self
        self.steals = 0

    def __len__(self):
        return len(self.cores)

    def steal(self, thief):
        """Work stealing: an idle core pulls a queued (unpinned, non-IRQ)
        item from a sibling's run queue tail."""
        for core in self.cores:
            if core is thief:
                continue
            for band in (1, 2):  # kernel daemons first, then user
                queue = core._queues[band]
                for position in range(len(queue) - 1, -1, -1):
                    item = queue[position]
                    if item.task is None or item.task.affinity is not None:
                        continue
                    del queue[position]
                    self.steals += 1
                    return item
        return None

    def core(self, index):
        return self.cores[index]

    def submit(self, task, amount, mode="user", band=None, attribution=None):
        if task is None:
            target = self.cores[0]
        elif getattr(task, "affinity", None) is not None:
            target = self.cores[task.affinity]
        else:
            target = min(
                self.cores, key=lambda core: (core.run_queue_length, core.index)
            )
        return target.submit(
            task, amount, mode=mode, band=band, attribution=attribution
        )

    # -- aggregated accounting -----------------------------------------

    @property
    def busy_time(self):
        return sum(core.busy_time for core in self.cores)

    @property
    def mode_time(self):
        total = {"user": 0.0, "kernel": 0.0, "ctx": 0.0}
        for core in self.cores:
            for key, value in core.mode_time.items():
                total[key] += value
        return total

    @property
    def ctx_switch_count(self):
        return sum(core.ctx_switch_count for core in self.cores)

    @property
    def run_queue_length(self):
        return sum(core.run_queue_length for core in self.cores)

    def utilization(self, now):
        if now <= 0:
            return 0.0
        return self.busy_time / (now * len(self.cores))
