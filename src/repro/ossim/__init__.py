"""Simulated Linux-like operating system — the substrate SysProf
instruments: per-node CPUs with a preemptive priority scheduler and
context-switch costs, syscall entry/exit, a socket layer, a VFS with
page cache and seek-accurate disks, and the tracepoint registry where
Kprof attaches exactly where the paper's kernel patch hooked Linux
2.4.19 (§2)."""

from repro.ossim.costs import DEFAULT_COSTS, CostModel
from repro.ossim.kernel import Kernel
from repro.ossim.task import (
    BAND_IRQ,
    BAND_KERNEL,
    BAND_USER,
    TASK_BLOCKED,
    TASK_EXITED,
    TASK_READY,
    TASK_RUNNING,
    Task,
)
from repro.ossim.taskctx import TaskContext
from repro.ossim.sockets import AppMessage, ByteCredits, ListeningSocket, Socket
from repro.ossim.tracepoints import NULL_TRACEPOINTS, NullTracepoints, Tracepoints

__all__ = [
    "AppMessage",
    "BAND_IRQ",
    "BAND_KERNEL",
    "BAND_USER",
    "ByteCredits",
    "CostModel",
    "DEFAULT_COSTS",
    "Kernel",
    "ListeningSocket",
    "NULL_TRACEPOINTS",
    "NullTracepoints",
    "Socket",
    "TASK_BLOCKED",
    "TASK_EXITED",
    "TASK_READY",
    "TASK_RUNNING",
    "Task",
    "TaskContext",
    "Tracepoints",
]
