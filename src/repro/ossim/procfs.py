"""A /proc-like virtual filesystem: named read handlers rendered on demand.

The SysProf dissemination daemon exports analyzer output here, "as with
Dproc" in the paper, so user-level consumers on the node can read current
metrics without going through the network channels.
"""


class ProcFs:
    def __init__(self):
        self._entries = {}

    def register(self, path, provider):
        """Register ``provider()`` (returning text) at ``path``."""
        if not path.startswith("/proc/"):
            raise ValueError("procfs paths must start with /proc/: {}".format(path))
        self._entries[path] = provider

    def unregister(self, path):
        self._entries.pop(path, None)

    def read(self, path):
        """Render the entry at ``path``; raises ``FileNotFoundError`` if absent."""
        provider = self._entries.get(path)
        if provider is None:
            raise FileNotFoundError(path)
        return provider()

    def listdir(self, prefix="/proc/"):
        """All registered paths under ``prefix``."""
        return sorted(path for path in self._entries if path.startswith(prefix))

    def exists(self, path):
        return path in self._entries
