"""Tasks: the simulated kernel's schedulable entities."""

# Task states
TASK_READY = "ready"
TASK_RUNNING = "running"
TASK_BLOCKED = "blocked"
TASK_EXITED = "exited"

# CPU priority bands (lower = more urgent)
BAND_IRQ = 0      # interrupt context: runs to completion, preempts everything
BAND_KERNEL = 1   # kernel daemons (nfsd, SysProf dissemination daemon)
BAND_USER = 2     # ordinary user processes


class Task:
    """One schedulable task (process/thread) on a node.

    Holds the accounting SysProf's scheduling and syscall probes report:
    user time, system time, blocked time, and context switch counts.
    """

    __slots__ = (
        "pid",
        "name",
        "kernel",
        "band",
        "state",
        "utime",
        "stime",
        "blocked_time",
        "blocked_since",
        "block_reason",
        "ctx_switches",
        "disk_ops",
        "affinity",
        "created_at",
        "exited_at",
        "proc",
        "exit_value",
        "cwd",
        "labels",
        "category",
    )

    def __init__(self, pid, name, kernel, band=BAND_USER):
        self.pid = pid
        self.name = name
        self.kernel = kernel
        self.band = band
        self.state = TASK_READY
        self.utime = 0.0
        self.stime = 0.0
        self.blocked_time = 0.0
        self.blocked_since = None
        self.block_reason = None
        self.ctx_switches = 0
        self.disk_ops = 0
        self.affinity = None  # CPU pin (core index) or None
        self.created_at = kernel.sim.now
        self.exited_at = None
        self.proc = None
        self.exit_value = None
        self.cwd = "/"
        self.labels = {}
        # Sticky attribution-ledger category (e.g. "dissemination" for
        # sysprofd); None means charges default by call site.
        self.category = None

    @property
    def cpu_time(self):
        return self.utime + self.stime

    @property
    def is_alive(self):
        return self.state != TASK_EXITED

    def mark_blocked(self, now, reason):
        self.state = TASK_BLOCKED
        self.blocked_since = now
        self.block_reason = reason

    def mark_ready(self, now):
        if self.state == TASK_BLOCKED and self.blocked_since is not None:
            self.blocked_time += now - self.blocked_since
            self.blocked_since = None
        self.block_reason = None
        if self.state != TASK_EXITED:
            self.state = TASK_READY

    def kill(self, reason="killed"):
        """Terminate the task at its next suspension point."""
        if self.proc is not None:
            self.proc.interrupt(reason)

    def charge(self, mode, seconds):
        """Account a slice of CPU time in the given mode."""
        if mode == "user":
            self.utime += seconds
        else:
            self.stime += seconds

    def stat_line(self, now):
        """A /proc/<pid>/stat-like summary."""
        return (
            "{pid} ({name}) {state} utime={utime:.6f} stime={stime:.6f} "
            "blocked={blocked:.6f} ctxt={ctxt}".format(
                pid=self.pid,
                name=self.name,
                state=self.state,
                utime=self.utime,
                stime=self.stime,
                blocked=self.blocked_time
                + ((now - self.blocked_since) if self.blocked_since is not None else 0.0),
                ctxt=self.ctx_switches,
            )
        )

    def __repr__(self):
        return "<Task {} pid={} {}>".format(self.name, self.pid, self.state)
