"""Static kernel instrumentation points.

The simulated kernel is instrumented the way the paper patched Linux
2.4.19: a fixed set of named tracepoints in the scheduler, syscall layer,
network stack, and filesystem.  The kernel fires them through the
:class:`Tracepoints` interface; the SysProf toolkit (:mod:`repro.core.kprof`)
provides the real implementation, and :class:`NullTracepoints` is the
unpatched-kernel stand-in.

Cost discipline: a code path about to fire events *first* asks
:meth:`Tracepoints.cost` for the CPU overhead of the enabled probes (and
their subscribed analyzer callbacks) and charges it to the simulated CPU
as part of its own work, then calls :meth:`Tracepoints.fire`.  This is
what makes monitoring perturbation an emergent property of the
simulation rather than a constant typed into the results.
"""

# Scheduling events
SCHED_SWITCH = "sched.switch"
SCHED_WAKEUP = "sched.wakeup"
SCHED_BLOCK = "sched.block"
TASK_CREATE = "task.create"
TASK_EXIT = "task.exit"

# System call events
SYSCALL_ENTRY = "syscall.entry"
SYSCALL_EXIT = "syscall.exit"

# Network events (transmit and receive, one per protocol layer)
NET_TX_SOCK = "net.tx.sock"
NET_TX_IP = "net.tx.ip"
NET_TX_DRIVER = "net.tx.driver"
NET_RX_DRIVER = "net.rx.driver"
NET_RX_IP = "net.rx.ip"
NET_RX_TRANSPORT = "net.rx.transport"
SOCK_ENQUEUE = "sock.enqueue"
SOCK_DELIVER = "sock.deliver"

# Filesystem events
FS_OPEN = "fs.open"
FS_READ = "fs.read"
FS_WRITE = "fs.write"
FS_FSYNC = "fs.fsync"
FS_CLOSE = "fs.close"

# Block layer events
BLK_ISSUE = "blk.issue"
BLK_COMPLETE = "blk.complete"

ALL_EVENT_TYPES = (
    SCHED_SWITCH, SCHED_WAKEUP, SCHED_BLOCK, TASK_CREATE, TASK_EXIT,
    SYSCALL_ENTRY, SYSCALL_EXIT,
    NET_TX_SOCK, NET_TX_IP, NET_TX_DRIVER,
    NET_RX_DRIVER, NET_RX_IP, NET_RX_TRANSPORT,
    SOCK_ENQUEUE, SOCK_DELIVER,
    FS_OPEN, FS_READ, FS_WRITE, FS_FSYNC, FS_CLOSE,
    BLK_ISSUE, BLK_COMPLETE,
)

SCHEDULING_EVENTS = frozenset(
    (SCHED_SWITCH, SCHED_WAKEUP, SCHED_BLOCK, TASK_CREATE, TASK_EXIT)
)
SYSCALL_EVENTS = frozenset((SYSCALL_ENTRY, SYSCALL_EXIT))
NETWORK_EVENTS = frozenset(
    (NET_TX_SOCK, NET_TX_IP, NET_TX_DRIVER,
     NET_RX_DRIVER, NET_RX_IP, NET_RX_TRANSPORT, SOCK_ENQUEUE, SOCK_DELIVER)
)
FILESYSTEM_EVENTS = frozenset((FS_OPEN, FS_READ, FS_WRITE, FS_FSYNC, FS_CLOSE))
BLOCK_EVENTS = frozenset((BLK_ISSUE, BLK_COMPLETE))

EVENT_CLASSES = {
    "scheduling": SCHEDULING_EVENTS,
    "syscall": SYSCALL_EVENTS,
    "network": NETWORK_EVENTS,
    "filesystem": FILESYSTEM_EVENTS,
    "block": BLOCK_EVENTS,
}


class Tracepoints:
    """Interface the simulated kernel fires events through."""

    def enabled(self, etype):
        """True when at least one subscriber wants ``etype``."""
        return False

    def cost(self, etype):
        """Simulated CPU seconds one firing of ``etype`` will consume."""
        return 0.0

    def cost_many(self, etypes):
        """Summed :meth:`cost` over several event types."""
        total = 0.0
        for etype in etypes:
            total += self.cost(etype)
        return total

    def cost_split(self, etype):
        """:meth:`cost` decomposed as ``(probe, analyzer)`` seconds.

        ``probe`` is the fixed event-emission cost, ``analyzer`` the
        subscribed callbacks' declared cost.  Used by the attribution
        ledger (:mod:`repro.observability.ledger`) to split composite
        kernel charges; implementations must keep ``probe + analyzer ==
        cost(etype)``.  The default attributes everything to the probe.
        """
        return (self.cost(etype), 0.0)

    def cost_split_many(self, etypes):
        """Summed :meth:`cost_split` over several event types."""
        probe = analyzer = 0.0
        for etype in etypes:
            p, a = self.cost_split(etype)
            probe += p
            analyzer += a
        return (probe, analyzer)

    def fire(self, etype, ts=None, **fields):
        """Emit one event.  ``ts`` overrides the node-local timestamp when
        the caller backfills precise per-layer times."""


class NullTracepoints(Tracepoints):
    """The unpatched kernel: all probes compiled out, zero cost."""

    __slots__ = ()


NULL_TRACEPOINTS = NullTracepoints()
