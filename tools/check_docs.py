#!/usr/bin/env python3
"""Link-and-anchor checker for the repository's Markdown docs.

Checks, over every ``*.md`` at the repo root and under ``docs/``:

1. every relative Markdown link ``[text](path)`` resolves to a file
   that exists (external ``http(s)``/``mailto`` links are skipped);
2. every ``#fragment`` on a relative link matches a heading in the
   target file (GitHub-style slugs);
3. every file under ``docs/`` is reachable from ``README.md`` —
   following both Markdown links and inline-code path mentions like
   ``docs/metrics.md``, so prose references count;
4. every machine-generated doc (``docs/calibration.md``,
   ``docs/cli.md``, and the marked blocks in ``EXPERIMENTS.md``)
   matches byte-for-byte regeneration from its committed inputs
   (``tools/gen_docs.py --check``) — hand edits to generated tables
   fail here;
5. every ``BENCH_*.json`` trajectory at the repo root is named by at
   least one authored doc, so no benchmark artifact is orphaned.

Exit status 0 when clean; 1 with one line per problem otherwise.
Run as ``python tools/check_docs.py [repo-root]``.
"""

import pathlib
import re
import sys

# Retrieval/task artifacts shipped with the repo, not authored docs:
# PAPER/PAPERS carry links into the original PDFs' asset trees.
SKIP = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root):
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [path for path in files if path.is_file() and path.name not in SKIP]


def slugify(heading):
    """GitHub's heading -> anchor rule: lowercase, drop punctuation,
    spaces to hyphens (backtick code spans keep their text)."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path):
    return {slugify(match) for match in HEADING.findall(path.read_text(encoding="utf-8"))}


def check_links(root):
    problems = []
    for path in doc_files(root):
        text = path.read_text(encoding="utf-8")
        for target in LINK.findall(text):
            if target.startswith(EXTERNAL):
                continue
            target, _, fragment = target.partition("#")
            where = "{}: link {!r}".format(path.relative_to(root), target or "#" + fragment)
            if target:
                resolved = (path.parent / target).resolve()
                if not resolved.exists():
                    problems.append(where + " does not resolve")
                    continue
            else:
                resolved = path
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_in(resolved):
                    problems.append(where + " has no anchor #" + fragment)
    return problems


def check_reachability(root):
    """BFS from README.md; an edge exists when a doc mentions another
    doc's repo-relative path or bare filename anywhere in its text."""
    files = doc_files(root)
    readme = root / "README.md"
    if not readme.is_file():
        return ["README.md missing"]
    reachable = {readme}
    frontier = [readme]
    while frontier:
        text = frontier.pop().read_text(encoding="utf-8")
        for candidate in files:
            if candidate in reachable:
                continue
            rel = str(candidate.relative_to(root))
            if rel in text or candidate.name in text:
                reachable.add(candidate)
                frontier.append(candidate)
    return [
        "docs/{} is not reachable from README.md".format(path.name)
        for path in files
        if path.parent.name == "docs" and path not in reachable
    ]


def check_generated(root):
    """Generated docs must match regeneration from committed inputs.

    Only meaningful at the real repo root (gen_docs renders from the
    BENCH_*.json files and the live argparse tree there); for any other
    root this is a no-op so the link checks stay usable on doc subsets.
    """
    import gen_docs  # same directory; sys.path already includes it

    if root.resolve() != gen_docs.ROOT:
        return []
    return [
        "{} drifts from regeneration — run `python tools/gen_docs.py`".format(rel)
        for rel in gen_docs.drift()
    ]


def check_bench_references(root):
    """Every BENCH_*.json trajectory must be named by an authored doc."""
    corpus = "\n".join(
        path.read_text(encoding="utf-8") for path in doc_files(root)
    )
    return [
        "{} is referenced by no doc — name it in EXPERIMENTS.md or docs/".format(
            path.name
        )
        for path in sorted(root.glob("BENCH_*.json"))
        if path.name not in corpus
    ]


def main(root=None):
    root = pathlib.Path(root or pathlib.Path(__file__).resolve().parent.parent)
    problems = (
        check_links(root)
        + check_reachability(root)
        + check_generated(root)
        + check_bench_references(root)
    )
    for problem in problems:
        print(problem)
    if not problems:
        print("docs ok: {} files checked".format(len(doc_files(root))))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
