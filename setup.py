"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs cannot build wheels.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on toolchains that still support the legacy path)
perform a ``setup.py develop`` install.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
