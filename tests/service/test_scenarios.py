"""Scenario builders: every supervised workload boots and makes traffic."""

import pytest

from repro.observability import ledger as cpu_ledger
from repro.service import SCENARIOS, build_scenario


@pytest.fixture(autouse=True)
def _no_leaked_ledger():
    """Scenarios own the process-global CPU ledger; leaking one across
    tests would silently change every later kernel's accounting."""
    assert cpu_ledger.active() is None
    yield
    assert cpu_ledger.active() is None


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="synthetic"):
        build_scenario("nope")


def test_registry_lists_all_builders():
    assert sorted(SCENARIOS) == ["federation", "nfs", "rubis", "synthetic"]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_boots_and_generates_telemetry(name):
    scenario = build_scenario(name)
    try:
        assert scenario.name == name
        assert scenario.sysprof.monitors
        assert scenario.engine.rules
        assert scenario.injector.fired == 0
        scenario.cluster.run(until=1.5)
        # Continuous traffic: the plane is receiving records/frames.
        gpas = [scenario.sysprof.gpa]
        if scenario.sysprof.federation is not None:
            gpas.extend(scenario.sysprof.federation.all_zones())
        received = sum(gpa.stats()["records_received"] for gpa in gpas)
        assert received > 0
        described = scenario.describe()
        assert described["name"] == name
        assert described["monitored"]
        assert described["rules"]
    finally:
        scenario.close()


def test_scenario_traffic_is_continuous_not_front_loaded():
    """The live-mode contract: traffic keeps flowing at any horizon, so
    a supervisor can run for hours.  Record counts must keep growing
    between two later windows, not just during startup."""
    scenario = build_scenario("nfs")
    try:
        scenario.cluster.run(until=1.0)
        early = scenario.sysprof.gpa.stats()["records_received"]
        scenario.cluster.run(until=2.0)
        mid = scenario.sysprof.gpa.stats()["records_received"]
        scenario.cluster.run(until=3.0)
        late = scenario.sysprof.gpa.stats()["records_received"]
        assert early > 0
        assert mid > early
        assert late > mid
    finally:
        scenario.close()


def test_scenario_overrides_reach_the_builder():
    scenario = build_scenario(
        "synthetic", nodes=2, rules=("p95(rpc) < 1s",), eviction_interval=0.3
    )
    try:
        assert len(scenario.sysprof.monitors) == 2
        assert [rule.name for rule in scenario.engine.rules] == ["p95(rpc) < 1s"]
        monitor = next(iter(scenario.sysprof.monitors.values()))
        assert monitor.daemon.eviction_interval == 0.3
    finally:
        scenario.close()


def test_scenario_reuses_an_already_installed_ledger():
    ours = cpu_ledger.install()
    try:
        scenario = build_scenario("synthetic", nodes=2)
        assert scenario.ledger is ours
        scenario.close()  # must NOT uninstall a ledger it does not own
        assert cpu_ledger.active() is ours
    finally:
        cpu_ledger.uninstall()


def test_federation_scenario_exposes_parent_links():
    scenario = build_scenario("federation")
    try:
        links = scenario.parent_links()
        assert links, "federated scenario must expose reparent machinery"
        for link in links:
            assert hasattr(link, "listeners")
    finally:
        scenario.close()
