"""The JSON socket server: wire round-trips, streaming, clean teardown."""

import json
import socket
import threading

import pytest

from repro.service import ServiceServer, SocketClient, Supervisor
from repro.service.server import encode


@pytest.fixture
def served():
    """A supervised synthetic scenario pumped on a background thread,
    with the TCP server bound to an ephemeral port."""
    supervisor = Supervisor("synthetic", slice_width=0.1)
    server = ServiceServer(supervisor).start()

    def pump_loop():
        while not supervisor.stopping:
            supervisor.pump()

    thread = threading.Thread(target=pump_loop, daemon=True)
    thread.start()
    yield supervisor, server
    supervisor.stopping = True
    thread.join(timeout=10)
    server.stop()
    supervisor.scenario.close()  # idempotent; releases the CPU ledger


def test_wire_round_trip_and_id_matching(served):
    _supervisor, server = served
    client = SocketClient(server.host, server.port)
    try:
        result = client.call("ping")
        assert result["scenario"] == "synthetic"
        status = client.call("status")
        assert status["slices"] >= 0
    finally:
        client.close()


def test_invalid_json_line_gets_an_error_response(served):
    _supervisor, server = served
    raw = socket.create_connection((server.host, server.port), timeout=10)
    try:
        raw.sendall(b"this is not json\n")
        line = raw.makefile("r").readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert "invalid JSON" in response["error"]
    finally:
        raw.close()


def test_encode_is_compact_single_line(served):
    line = encode({"b": [1, 2], "a": "x"})
    assert "\n" not in line
    assert line == '{"a":"x","b":[1,2]}'


def test_subscriber_streams_fault_driven_events(served):
    """End to end over TCP: subscribe, stage a CPU hog, and watch the
    anomaly detector's alert arrive as a pushed event line."""
    supervisor, server = served
    client = SocketClient(server.host, server.port)
    try:
        sub = client.call("subscribe", events=["alert", "anomaly"])
        assert sub["sub"] >= 1
        client.call("inject_fault", events=[{
            "at": 0.3, "kind": "cpu_hog", "target": "n0",
            "params": {"duration": 1.5, "utilization": 0.95},
        }])
        event = client.read_event(timeout=120)
        assert event["event"] in ("alert", "anomaly")
        assert event["data"]["state"] == "fire"
        alert = event["data"]["alert"]
        assert alert["rule"].startswith("anomaly:")
        assert alert["blame"]["node"] == "n0"
    finally:
        client.close()


def test_shutdown_op_stops_the_pump_loop(served):
    supervisor, server = served
    client = SocketClient(server.host, server.port)
    try:
        result = client.call("shutdown")
        assert result["stopping"] is True
    finally:
        client.close()
    assert supervisor.stopping


def test_disconnected_subscriber_is_garbage_collected(served):
    supervisor, server = served
    client = SocketClient(server.host, server.port)
    client.call("subscribe", events=["alert"])
    client.close()
    # Next boundary flush hits the dead socket and drops the sub.  The
    # supervisor mutates _subs on its own thread; poll until it notices.
    deadline = threading.Event()
    for _ in range(200):
        supervisor.engine.external_fire(
            "anomaly:gc(probe)", 1.0, now=supervisor.now
        )
        supervisor.engine.external_clear(
            "anomaly:gc(probe)", now=supervisor.now
        )
        if not supervisor._subs:
            break
        deadline.wait(0.05)
    assert not supervisor._subs
