"""The staged incident: anomaly detection beats the SLO rule to the punch.

A CPU hog on the NFS backend first shows up as a slope change in the
node's cumulative ``cpu_busy`` gauge — visible to the rate detector
within a couple of recorder samples — and only later as a p95 latency
breach once enough slow interactions fill the SLO rule's sliding
lookback and hysteresis.  This test stages that incident through the
live control plane and pins the ordering: the synthetic anomaly alert
fires strictly before the rule alert, both stream to a subscriber, and
both clear after the hog ends.
"""

import pytest

from repro.service import ServiceClient, Supervisor

HOG_NODE = "backend1"
HOG_START = 0.75  # absolute simulated time
HOG_DURATION = 2.0


@pytest.fixture
def incident():
    """Run the scripted incident once; yield (supervisor, events)."""
    supervisor = Supervisor("nfs", slice_width=0.1)
    client = ServiceClient(supervisor)
    sub = client.subscribe(events=["alert", "anomaly"])
    supervisor.run(0.5)
    client.inject_fault(events=[{
        "at": HOG_START - supervisor.now, "kind": "cpu_hog",
        "target": HOG_NODE,
        "params": {"duration": HOG_DURATION, "utilization": 0.95},
    }])
    supervisor.run(7.5)  # hog ends at 2.75; leave room for both clears
    events = client.poll(sub)
    yield supervisor, events
    supervisor.shutdown()


def _lifecycle(events, source):
    return [
        (e["data"]["state"], e["at"])
        for e in events
        if e["event"] == "alert" and e["data"]["alert"]["source"] == source
    ]


def test_anomaly_fires_before_the_slo_rule(incident):
    _supervisor, events = incident
    anomaly = _lifecycle(events, "anomaly")
    rule = _lifecycle(events, "rule")
    assert anomaly and anomaly[0][0] == "fire"
    assert rule and rule[0][0] == "fire"
    anomaly_fire_at = anomaly[0][1]
    rule_fire_at = rule[0][1]
    assert anomaly_fire_at >= HOG_START  # not before the incident exists
    assert anomaly_fire_at < rule_fire_at, (
        "rate detector must flag the hog before the p95 rule trips "
        "(anomaly at {:.2f}s, rule at {:.2f}s)".format(
            anomaly_fire_at, rule_fire_at
        )
    )


def test_both_alerts_clear_after_the_hog_ends(incident):
    """Both lifecycles complete: each source's last transition is a
    clear.  (The rate detector may legitimately fire twice — the hog's
    *end* is a slope change too — but every fire must eventually clear
    once the baseline re-adapts.)"""
    _supervisor, events = incident
    for source in ("anomaly", "rule"):
        states = [state for state, _at in _lifecycle(events, source)]
        assert states[0] == "fire"
        assert states[-1] == "clear", source
        clear_at = _lifecycle(events, source)[-1][1]
        assert clear_at > HOG_START


def test_incident_attribution_names_the_hogged_node(incident):
    supervisor, events = incident
    anomaly_fires = [
        e for e in events
        if e["event"] == "anomaly" and e["data"]["state"] == "fire"
    ]
    assert anomaly_fires
    blame = anomaly_fires[0]["data"]["alert"]["blame"]
    assert blame["node"] == HOG_NODE
    assert HOG_NODE in blame["reason"]
    # The engine-level alert history agrees and ids never collided.
    ids = [alert.id for alert in supervisor.engine.alerts]
    assert len(ids) == len(set(ids))
    sources = {alert.source for alert in supervisor.engine.alerts}
    assert sources == {"anomaly", "rule"}


def test_incident_is_seed_deterministic(incident):
    supervisor, events = incident
    assert supervisor.engine.anomaly_alerts >= 1
    # Replay the identical incident: the full event stream (kinds,
    # states, rule names, timestamps) must reproduce exactly.
    replay_sup = Supervisor("nfs", slice_width=0.1)
    try:
        client = ServiceClient(replay_sup)
        sub = client.subscribe(events=["alert", "anomaly"])
        replay_sup.run(0.5)
        client.inject_fault(events=[{
            "at": HOG_START - replay_sup.now, "kind": "cpu_hog",
            "target": HOG_NODE,
            "params": {"duration": HOG_DURATION, "utilization": 0.95},
        }])
        replay_sup.run(7.5)
        replay = client.poll(sub)
    finally:
        replay_sup.shutdown()
    strip = [
        (e["event"], e["seq"], e["at"], e["data"]["state"],
         e["data"]["alert"]["rule"])
        for e in events
    ]
    replay_strip = [
        (e["event"], e["seq"], e["at"], e["data"]["state"],
         e["data"]["alert"]["rule"])
        for e in replay
    ]
    assert strip == replay_strip
