"""The live-service determinism contract.

A supervised run that receives no controls must be byte-identical to a
batch run of the same scenario and seed: the supervisor's slice pumping,
metrics scraping, time-series recording, anomaly scoring, and query
serving are all host-side pure.  These tests pin that with the GPA trace
digest — the same currency every other determinism suite in this repo
uses — across slice widths and under a steady stream of read-only API
traffic.
"""

import pytest

from repro.experiments.common import trace_digest
from repro.service import ServiceClient, Supervisor, build_scenario

HORIZON = 2.0


def _batch_digest():
    scenario = build_scenario("nfs")
    try:
        scenario.cluster.run(until=HORIZON)
        records = scenario.sysprof.gpa.query_interactions()
        assert records, "batch baseline produced no interactions"
        return trace_digest(records)
    finally:
        scenario.close()


@pytest.fixture(scope="module")
def batch_digest():
    return _batch_digest()


def _service_digest(slice_width, visit=None):
    supervisor = Supervisor("nfs", slice_width=slice_width)
    try:
        while supervisor.now < HORIZON:
            supervisor.pump(
                width=min(slice_width, HORIZON - supervisor.now)
            )
            if visit is not None:
                visit(supervisor)
        return trace_digest(supervisor.sysprof.gpa.query_interactions())
    finally:
        supervisor.shutdown()


@pytest.mark.parametrize("slice_width", [0.1, 0.25, 0.07])
def test_uncontrolled_service_run_matches_batch(batch_digest, slice_width):
    assert _service_digest(slice_width) == batch_digest


def test_query_traffic_does_not_perturb_the_trace(batch_digest):
    """Hammer the read-only API at every slice boundary — snapshots,
    sketch merges, ledger breakdowns, dashboard renders, subscription
    polls — and the trace still hashes identical to batch."""
    state = {}

    def visit(supervisor):
        client = state.setdefault("client", ServiceClient(supervisor))
        if "sub" not in state:
            state["sub"] = client.subscribe()
        client.ping()
        client.status()
        client.metrics(pattern="sysprof.node.*")
        client.sketch("nfs-write", lookback=1.0)
        client.ledger()
        client.alerts()
        client.call("rules")
        client.call("series_names")
        client.call("staleness")
        client.call("dashboard")
        client.poll(state["sub"])

    assert _service_digest(0.1, visit=visit) == batch_digest


def test_recorder_and_anomaly_sidecars_do_not_perturb(batch_digest):
    """The sidecars themselves are part of the uncontrolled supervisor
    (exercised above), but pin the inverse too: disabling them changes
    nothing either — sampling is pure observation in both directions."""
    supervisor = Supervisor("nfs", slice_width=0.1, anomaly=False)
    try:
        supervisor.run(HORIZON)
        digest = trace_digest(supervisor.sysprof.gpa.query_interactions())
    finally:
        supervisor.shutdown()
    assert digest == batch_digest


def test_same_seed_service_runs_are_identical_to_each_other():
    assert _service_digest(0.2) == _service_digest(0.2)
