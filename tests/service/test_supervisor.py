"""Supervisor: protocol dispatch, slice pumping, events, controls."""

import threading

import pytest

from repro.service import (
    EVENT_KINDS,
    OPS,
    PROTOCOL_VERSION,
    ServiceCallError,
    ServiceClient,
    Supervisor,
)


@pytest.fixture
def sup():
    supervisor = Supervisor("synthetic", slice_width=0.1)
    yield supervisor
    if not supervisor.stopping:
        supervisor.shutdown()


@pytest.fixture
def client(sup):
    return ServiceClient(sup)


# ---------------------------------------------------------------------------
# protocol shape
# ---------------------------------------------------------------------------


def test_response_echoes_id_and_version(sup):
    response = sup.handle({"v": 1, "id": 7, "op": "ping", "params": {}})
    assert response["v"] == PROTOCOL_VERSION
    assert response["id"] == 7
    assert response["ok"] is True
    assert response["result"]["scenario"] == "synthetic"


def test_unknown_op_is_an_error_not_an_exception(sup):
    response = sup.handle({"op": "frobnicate"})
    assert response["ok"] is False
    assert "frobnicate" in response["error"]
    assert "ping" in response["error"]  # advertises the real op table


def test_wrong_protocol_version_is_rejected(sup):
    response = sup.handle({"v": 99, "op": "ping"})
    assert response["ok"] is False
    assert "99" in response["error"]


def test_malformed_requests_are_errors(sup):
    assert sup.handle("not an object")["ok"] is False
    assert sup.handle({"op": "ping", "params": [1, 2]})["ok"] is False
    missing = sup.handle({"op": "series", "params": {}})  # requires "name"
    assert missing["ok"] is False


def test_client_raises_on_error_responses(client):
    with pytest.raises(ServiceCallError):
        client.call("frobnicate")


def test_every_op_in_the_table_has_a_handler(sup):
    for name, handler in OPS.items():
        assert callable(handler), name


# ---------------------------------------------------------------------------
# pumping
# ---------------------------------------------------------------------------


def test_pump_advances_exactly_one_slice(sup):
    assert sup.now == 0.0
    sup.pump()
    assert sup.now == pytest.approx(0.1)
    sup.pump(width=0.05)
    assert sup.now == pytest.approx(0.15)
    assert sup.slices == 2


def test_run_stops_exactly_at_the_deadline(sup):
    sup.run(0.73)
    assert sup.now == pytest.approx(0.73)
    sup.run(0.27)
    assert sup.now == pytest.approx(1.0)


def test_boundary_samples_recorder_and_anomaly(sup):
    sup.run(0.5)
    assert sup.recorder.samples == sup.slices
    assert sup.anomaly.checks == sup.slices
    assert sup.recorder.names()  # series actually landed


def test_service_sources_are_registered(sup):
    prefixes = sup.sysprof.metrics.source_prefixes()
    assert "sysprof.recorder" in prefixes
    assert "sysprof.anomaly" in prefixes
    assert "sysprof.service" in prefixes
    sup.run(0.2)
    collected = sup.sysprof.metrics.collect()
    assert collected["sysprof.recorder.samples"][1] == sup.slices
    assert collected["sysprof.service.slices"][1] == sup.slices


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


def test_metrics_query_filters_by_pattern(sup, client):
    sup.run(0.3)
    result = client.metrics(pattern="sysprof.node.*.cpu_busy")
    assert result["ts"] == sup.now
    assert result["metrics"]
    assert all(
        name.startswith("sysprof.node.") for name in result["metrics"]
    )


def test_series_and_names_round_trip(sup, client):
    sup.run(0.3)
    names = client.call("series_names", pattern="sysprof.node.*")["names"]
    assert names
    series = client.call("series", name=names[0])
    assert series["kind"] in ("counter", "gauge")
    assert len(series["points"]) == sup.slices


def test_status_and_rules_reflect_the_scenario(sup, client):
    status = client.status()
    assert status["scenario"]["name"] == "synthetic"
    assert status["slice_width"] == 0.1
    rules = client.call("rules")["rules"]
    assert rules and rules[0]["firing"] is False


def test_dashboard_op_renders_text(sup, client):
    sup.run(0.4)
    text = client.call("dashboard")["text"]
    assert "repro serve :: synthetic" in text
    assert "node health:" in text
    assert "history" in text


# ---------------------------------------------------------------------------
# controls
# ---------------------------------------------------------------------------


def test_control_ops_apply_and_are_counted(sup, client):
    sup.run(0.2)
    client.call("set_eviction_interval", interval=0.05)
    monitor = next(iter(sup.sysprof.monitors.values()))
    assert monitor.daemon.eviction_interval == 0.05
    client.call("add_rule", rule="p99(rpc) < 2s")
    assert len(sup.engine.rules) == 2
    client.call("remove_rule", rule="p99(rpc) < 2s")
    assert len(sup.engine.rules) == 1
    client.call("drill_down", node="n0")
    assert sup.sysprof.controller.drilled_nodes() == ["n0"]
    client.call("restore", node="n0")
    assert sup.sysprof.controller.drilled_nodes() == []
    assert client.status()["controls_applied"] == 5


def test_inject_fault_registers_relative_to_now(sup, client):
    sup.run(0.5)
    result = client.inject_fault(events=[{
        "at": 0.25, "kind": "cpu_hog", "target": "n0",
        "params": {"duration": 0.2, "utilization": 1.0},
    }])
    assert result["registered"][0]["at"] == pytest.approx(0.75)
    sup.run(1.0)
    assert sup.injector.summary() == {"cpu_hog": 1}


def test_set_forward_interval_requires_federation(sup, client):
    with pytest.raises(ServiceCallError, match="federated"):
        client.call("set_forward_interval", interval=0.5)


# ---------------------------------------------------------------------------
# events and subscriptions
# ---------------------------------------------------------------------------


def test_subscription_filters_kinds_and_sequences_events(sup, client):
    sub_all = client.subscribe()
    sub_reparent = client.subscribe(events=["reparent"])
    sup.engine.external_fire("anomaly:test(x)", 9.0, now=sup.now)
    sup.engine.external_clear("anomaly:test(x)", now=sup.now)
    events = client.poll(sub_all)
    # An anomaly transition lands on both the anomaly and alert streams.
    assert [e["event"] for e in events] == [
        "anomaly", "alert", "anomaly", "alert"
    ]
    assert [e["data"]["state"] for e in events] == [
        "fire", "fire", "clear", "clear"
    ]
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)
    assert all(e["v"] == PROTOCOL_VERSION for e in events)
    assert client.poll(sub_all) == []  # poll drains
    assert client.poll(sub_reparent) == []  # filtered out entirely


def test_unknown_event_kind_is_rejected(client):
    with pytest.raises(ServiceCallError, match="unknown event kinds"):
        client.subscribe(events=["weather"])
    assert set(EVENT_KINDS) == {"alert", "reparent", "anomaly"}


def test_push_subscribers_flush_at_slice_boundaries(sup):
    pushed = []
    sup.subscribe(["alert", "anomaly"], push=pushed.append)
    sup.engine.external_fire("anomaly:test(y)", 5.0, now=sup.now)
    assert pushed == []  # queued, not delivered mid-slice
    sup.pump()
    assert [e["data"]["state"] for e in pushed] == ["fire", "fire"]


def test_dead_push_subscriber_is_dropped_not_fatal(sup):
    def broken(_event):
        raise ConnectionError("gone")

    sub_id = sup.subscribe(["alert"], push=broken)
    sup.engine.external_fire("anomaly:test(z)", 5.0, now=sup.now)
    sup.pump()  # must not raise
    assert sub_id not in sup._subs


def test_poll_after_unsubscribe_is_an_error(sup, client):
    sub = client.subscribe()
    assert client.call("unsubscribe", sub=sub)["removed"] is True
    with pytest.raises(ServiceCallError, match="unknown subscription"):
        client.poll(sub)


def test_reparent_events_stream_during_a_parent_partition():
    """Federated scenario: cutting a zone GPA off pushes the members'
    failover — and the post-heal return — onto the reparent stream."""
    supervisor = Supervisor("federation", slice_width=0.2)
    try:
        client = ServiceClient(supervisor)
        sub = client.subscribe(events=["reparent"])
        supervisor.run(1.0)
        client.inject_fault(events=[
            {"at": 0.0, "kind": "parent_partition", "target": "r0",
             "params": {"scope": "gpa"}},
            {"at": 4.0, "kind": "heal"},
        ])
        supervisor.run(8.0)
        events = client.poll(sub)
        transitions = [
            (e["data"]["link"], e["data"]["event"], e["data"]["target"])
            for e in events
        ]
        reparents = [t for t in transitions if t[1] == "reparent"]
        returns = [t for t in transitions if t[1] == "return"]
        assert reparents, transitions
        assert all(target == "root" for _link, _ev, target in reparents)
        assert {link for link, _ev, _t in reparents} == {
            "r0n0", "r0n1", "r0n2"
        }
        assert returns, "members must return to the healed primary"
    finally:
        supervisor.shutdown()


# ---------------------------------------------------------------------------
# cross-thread submission
# ---------------------------------------------------------------------------


def test_submit_is_answered_at_the_next_boundary(sup):
    responses = []

    def submitter():
        responses.append(sup.submit({"op": "ping"}))

    thread = threading.Thread(target=submitter)
    thread.start()
    deadline = 100
    while not responses and deadline:
        sup.pump()
        deadline -= 1
    thread.join(timeout=5)
    assert responses and responses[0]["ok"] is True


def test_shutdown_releases_the_ledger_and_stops(sup):
    from repro.observability import ledger as cpu_ledger

    assert cpu_ledger.active() is not None
    sup.shutdown()
    assert sup.stopping
    assert cpu_ledger.active() is None
    sup.shutdown()  # idempotent
