"""The Markdown docs stay internally consistent.

Runs ``tools/check_docs.py`` in-process: every relative link in the
authored ``*.md`` files resolves, every ``#fragment`` matches a heading
in its target, and every file under ``docs/`` is reachable from
``README.md``.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


def test_relative_links_resolve_and_anchors_exist():
    assert check_docs.check_links(ROOT) == []


def test_every_doc_is_reachable_from_readme():
    assert check_docs.check_reachability(ROOT) == []
