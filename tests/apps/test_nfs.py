"""NFS protocol, server semantics, mount pipelining, full service."""

import pytest

from repro.apps.nfs import protocol
from repro.apps.nfs.client import NfsMount
from repro.apps.nfs.server import NfsServer
from repro.apps.nfs.service import VirtualStorageService
from repro.cluster import Cluster


def test_protocol_sizes():
    assert protocol.request_size(protocol.OP_WRITE, 16384) == 16384 + 200
    assert protocol.request_size(protocol.OP_READ, 16384) == 200
    assert protocol.reply_size(protocol.OP_READ, 16384) == 16384 + 128
    assert protocol.reply_size(protocol.OP_WRITE) == 128


def test_meta_shape():
    meta = protocol.make_meta(protocol.OP_WRITE, "/f", offset=5, nbytes=10)
    assert meta == {
        "op": "nfs-write", "path": "/f", "offset": 5, "len": 10, "stable": True,
    }


@pytest.fixture
def direct():
    """Client talking straight to one NFS server (no proxy)."""
    cluster = Cluster(seed=29)
    cluster.add_node("client")
    server_node = cluster.add_node("server", with_disk=True)
    server = NfsServer(server_node).start()
    return cluster, server


def _run_mount(cluster, fn):
    task = cluster.node("client").spawn("mnt", fn)
    cluster.run(until=60.0)
    assert task.proc.triggered, "mount task did not finish"
    return task.exit_value


def test_stable_write_hits_disk(direct):
    cluster, server = direct

    def work(ctx):
        mount = NfsMount(ctx, "server")
        yield from mount.connect()
        yield from mount.write("/f", 0, 16384, stable=True)
        yield from mount.drain()
        yield from mount.close()
        return mount.mean_latency

    latency = _run_mount(cluster, work)
    assert server.ops[protocol.OP_WRITE] == 1
    assert server.bytes_written == 16384
    assert cluster.node("server").kernel.disk.writes == 1
    assert latency > 5e-3  # dominated by the disk


def test_unstable_write_then_commit(direct):
    cluster, server = direct

    def work(ctx):
        mount = NfsMount(ctx, "server")
        yield from mount.connect()
        t0 = ctx.now
        for index in range(4):
            yield from mount.write("/f", index * 16384, 16384, stable=False)
        yield from mount.drain()
        fast = ctx.now - t0
        yield from mount.commit("/f")
        yield from mount.close()
        return fast

    fast = _run_mount(cluster, work)
    assert fast < 20e-3  # unstable writes avoid the disk
    assert server.ops[protocol.OP_COMMIT] == 1
    assert cluster.node("server").kernel.disk.writes == 1  # one coalesced flush


def test_read_roundtrip(direct):
    cluster, server = direct

    def work(ctx):
        mount = NfsMount(ctx, "server")
        yield from mount.connect()
        yield from mount.write("/f", 0, 8192, stable=True)
        yield from mount.drain()
        yield from mount.read("/f", 0, 8192)
        yield from mount.drain()
        yield from mount.close()

    _run_mount(cluster, work)
    assert server.ops[protocol.OP_READ] == 1
    assert server.bytes_read == 8192


def test_pipeline_overlaps_requests(direct):
    cluster, server = direct
    latencies = []

    def work(ctx):
        mount = NfsMount(
            ctx, "server", pipeline=4,
            on_complete=lambda ts, op, path, lat: latencies.append(lat),
        )
        yield from mount.connect()
        t0 = ctx.now
        for index in range(8):
            yield from mount.write("/f", index * 16384, 16384, stable=True)
        yield from mount.drain()
        yield from mount.close()
        return ctx.now - t0

    elapsed = _run_mount(cluster, work)
    assert len(latencies) == 8
    # 8 stable writes serialized would take >= 8 * ~7ms at the disk;
    # pipelining keeps the disk continuously busy instead of idling
    # between RPCs, so per-op latencies overlap wall time.
    assert sum(latencies) > elapsed


def test_mount_validates_pipeline(direct):
    cluster, _server = direct

    def work(ctx):
        try:
            NfsMount(ctx, "server", pipeline=0)
        except ValueError:
            return "rejected"
        yield from ctx.sleep(0)

    assert _run_mount(cluster, work) == "rejected"


def test_service_routes_by_path_hash():
    cluster = Cluster(seed=31)
    cluster.add_node("client")
    cluster.add_node("proxy")
    cluster.add_node("backend1", with_disk=True)
    cluster.add_node("backend2", with_disk=True)
    service = VirtualStorageService(
        cluster, "proxy", ["backend1", "backend2"]
    ).start()

    def work(ctx):
        mount = NfsMount(ctx, "proxy")
        yield from mount.connect()
        for index in range(6):
            yield from mount.write(
                "/data/file{}".format(index), 0, 4096, stable=False
            )
        yield from mount.drain()
        yield from mount.close()

    cluster.node("client").spawn("mnt", work)
    cluster.run(until=30.0)
    ops = {
        name: sum(server.ops.values())
        for name, server in service.servers.items()
    }
    assert sum(ops.values()) == 6
    assert all(count > 0 for count in ops.values())  # both backends used
    assert service.proxy.forwarded == 6


def test_service_requires_disk_on_backends():
    cluster = Cluster(seed=31)
    cluster.add_node("proxy")
    cluster.add_node("nodisk")
    with pytest.raises(ValueError, match="with_disk"):
        VirtualStorageService(cluster, "proxy", ["nodisk"])
