"""Request dispatcher: DWCS-driven dispatch, slots, completions, routing."""

import pytest

from repro.apps.rubis.requests import BIDDING, COMMENT, Request
from repro.apps.rubis.site import RubisSite
from repro.apps.scheduling import (
    DwcsScheduler,
    DwcsStream,
    LoadMonitor,
    RequestDispatcher,
    ResourceAwareRouter,
    RoundRobinRouter,
)
from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig


def build(router_factory=None, slots=4, monitor=False):
    cluster = Cluster(seed=41)
    cluster.add_node("client")
    cluster.add_node("apache")
    cluster.add_node("servlet1")
    cluster.add_node("servlet2")
    cluster.add_node("db", with_disk=True)
    cluster.add_node("mgmt")
    site = RubisSite(cluster, "apache", ["servlet1", "servlet2"], "db").start()
    sysprof = None
    if monitor:
        sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.1))
        sysprof.install(monitored=["servlet1", "servlet2"], gpa_node="mgmt")
        sysprof.start()
    scheduler = DwcsScheduler(drop_factor=4.0)
    for profile in (BIDDING, COMMENT):
        scheduler.add_stream(
            DwcsStream(profile.name, profile.period, profile.window_x,
                       profile.window_y)
        )
    router = router_factory(cluster, sysprof) if router_factory else None
    dispatcher = RequestDispatcher(
        cluster.node("client"), "apache", 80, ["servlet1", "servlet2"],
        scheduler, router=router, slots_per_servlet=slots,
    ).start()
    return cluster, site, dispatcher, sysprof


def submit_later(cluster, dispatcher, profile, at, count=1):
    def feeder(ctx):
        yield from ctx.sleep(at)
        for _ in range(count):
            dispatcher.submit(Request(profile, session=0, arrival=ctx.now))

    cluster.node("client").spawn("feeder", feeder)


def test_requests_complete_with_latency(cluster=None):
    cluster, site, dispatcher, _ = build()
    submit_later(cluster, dispatcher, BIDDING, at=0.5, count=5)
    cluster.run(until=5.0)
    assert len(dispatcher.completions) == 5
    assert dispatcher.dispatched == 5
    for record in dispatcher.completions:
        assert record.request_class == "bidding"
        assert record.latency > 0
        assert record.servlet in ("servlet1", "servlet2")


def test_round_robin_alternates_servlets():
    cluster, site, dispatcher, _ = build()
    submit_later(cluster, dispatcher, BIDDING, at=0.5, count=6)
    cluster.run(until=6.0)
    split = {}
    for record in dispatcher.completions:
        split[record.servlet] = split.get(record.servlet, 0) + 1
    assert split == {"servlet1": 3, "servlet2": 3}


def test_throughput_series_and_mean():
    cluster, site, dispatcher, _ = build()
    submit_later(cluster, dispatcher, BIDDING, at=0.5, count=4)
    submit_later(cluster, dispatcher, COMMENT, at=0.5, count=2)
    cluster.run(until=6.0)
    series = dispatcher.throughput_series(bin_width=1.0)
    assert set(series) == {"bidding", "comment"}
    assert dispatcher.mean_throughput("bidding", 0.0, 6.0) == pytest.approx(4 / 6.0)


def test_slots_limit_outstanding():
    cluster, site, dispatcher, _ = build(slots=1)
    # servlet work is 5ms+; 6 requests through 2x1 slots must serialize.
    submit_later(cluster, dispatcher, BIDDING, at=0.1, count=6)
    cluster.run(until=10.0)
    assert len(dispatcher.completions) == 6
    assert dispatcher.stats()["streams"]["bidding"]["serviced"] == 6


def test_resource_aware_router_prefers_light_server():
    def factory(cluster, sysprof):
        monitor = LoadMonitor(cluster.node("client"), sysprof.hub).start()
        return ResourceAwareRouter(["servlet1", "servlet2"], monitor)

    cluster, site, dispatcher, sysprof = build(router_factory=factory, monitor=True)
    site.inject_cpu_load("servlet1", start=0.2, duration=30.0, duty=0.9)

    def feeder(ctx):
        yield from ctx.sleep(1.0)  # let nodestats accumulate two samples
        for _ in range(12):
            dispatcher.submit(Request(BIDDING, session=0, arrival=ctx.now))
            yield from ctx.sleep(0.05)

    cluster.node("client").spawn("feeder", feeder)
    cluster.run(until=8.0)
    split = {}
    for record in dispatcher.completions:
        split[record.servlet] = split.get(record.servlet, 0) + 1
    assert split.get("servlet2", 0) > split.get("servlet1", 0)


def test_router_neutral_without_telemetry():
    class NullMonitor:
        def server_load(self, name):
            return None

    router = ResourceAwareRouter(["a", "b"], NullMonitor())

    class FakeDispatcher:
        def free_slots(self, name):
            return 1

    choices = [router.choose(None, FakeDispatcher()) for _ in range(4)]
    assert set(choices) == {"a", "b"}  # round-robin fallback stays balanced


def test_round_robin_router_cycles():
    router = RoundRobinRouter(["x", "y", "z"])
    assert [router.choose(None, None) for _ in range(6)] == [
        "x", "y", "z", "x", "y", "z",
    ]
