"""RUBiS site: request profiles, DB, servlets, assembled flow."""

import pytest

from repro.apps.rubis.db import DbServer
from repro.apps.rubis.requests import BIDDING, COMMENT, PROFILES, Request
from repro.apps.rubis.site import RubisSite
from repro.cluster import Cluster


def test_profiles_match_paper_characterization():
    # "The bidding request is cpu intensive ... The comment request on the
    # other hand generates significant network traffic."
    assert BIDDING.servlet_cpu > 2 * COMMENT.servlet_cpu
    assert COMMENT.response_bytes > 10 * BIDDING.response_bytes
    # Bidding has real-time deadlines; comments are less stringent.
    assert BIDDING.period < COMMENT.period
    assert BIDDING.window_x / BIDDING.window_y < COMMENT.window_x / COMMENT.window_y
    assert set(PROFILES) == {"bidding", "comment"}


def test_request_meta_carries_profile():
    request = Request(BIDDING, session=3, arrival=1.5)
    meta = request.meta()
    assert meta["class"] == "bidding"
    assert meta["session"] == 3
    assert meta["req_id"] == request.request_id
    assert meta["servlet_cpu"] == BIDDING.servlet_cpu


def test_request_ids_unique():
    a = Request(BIDDING, 0, 0.0)
    b = Request(COMMENT, 0, 0.0)
    assert a.request_id != b.request_id


@pytest.fixture
def site_cluster():
    cluster = Cluster(seed=37)
    cluster.add_node("client")
    cluster.add_node("apache")
    cluster.add_node("servlet1")
    cluster.add_node("servlet2")
    cluster.add_node("db", with_disk=True)
    site = RubisSite(cluster, "apache", ["servlet1", "servlet2"], "db").start()
    return cluster, site


def _browse(ctx, profile, servlet, count, latencies):
    sock = yield from ctx.connect("apache", 80)
    for _ in range(count):
        request = Request(profile, session=0, arrival=ctx.now)
        meta = request.meta()
        meta["servlet"] = servlet
        t0 = ctx.now
        yield from ctx.send_message(
            sock, profile.request_bytes, kind=profile.name, meta=meta
        )
        reply = yield from ctx.recv_message(sock)
        latencies.append(ctx.now - t0)
        assert reply.size == profile.response_bytes
    yield from ctx.close(sock)


def test_bidding_flow_through_all_tiers(site_cluster):
    cluster, site = site_cluster
    latencies = []
    cluster.node("client").spawn("cli", _browse, BIDDING, "servlet1", 3, latencies)
    cluster.run(until=10.0)
    assert len(latencies) == 3
    assert site.servlets["servlet1"].by_class == {"bidding": 3}
    assert site.servlets["servlet2"].requests == 0
    assert site.db.queries == 3
    assert site.db.reads == 3
    # Latency dominated by bidding's servlet CPU.
    assert min(latencies) > BIDDING.servlet_cpu


def test_comment_writes_to_db(site_cluster):
    cluster, site = site_cluster
    latencies = []
    cluster.node("client").spawn("cli", _browse, COMMENT, "servlet2", 2, latencies)
    cluster.run(until=10.0)
    assert site.db.writes == 2
    assert site.servlets["servlet2"].by_class == {"comment": 2}


def test_apache_routes_on_servlet_field(site_cluster):
    cluster, site = site_cluster
    cluster.node("client").spawn("c1", _browse, BIDDING, "servlet1", 2, [])
    cluster.node("client").spawn("c2", _browse, BIDDING, "servlet2", 2, [])
    cluster.run(until=10.0)
    assert site.apache.per_backend == {"servlet1": 2, "servlet2": 2}
    assert site.stats()["apache"]["forwarded"] == 4


def test_cpu_load_injection_slows_servlet(site_cluster):
    cluster, site = site_cluster
    before, after = [], []
    cluster.node("client").spawn("warm", _browse, BIDDING, "servlet1", 3, before)
    cluster.run(until=5.0)
    site.inject_cpu_load("servlet1", start=cluster.sim.now, duration=30.0, duty=0.8)
    cluster.node("client").spawn("hot", _browse, BIDDING, "servlet1", 3, after)
    cluster.run(until=cluster.sim.now + 20.0)
    assert len(after) == 3
    # Skip the first warm-up request (it waits behind the DB prewarm scan).
    steady_before = before[1:]
    assert sum(after) / len(after) > 2.0 * sum(steady_before) / len(steady_before)


def test_db_requires_disk():
    cluster = Cluster(seed=1)
    nodisk = cluster.add_node("nodisk")
    with pytest.raises(ValueError):
        DbServer(nodisk)


def test_db_prewarm_keeps_queries_fast(site_cluster):
    cluster, site = site_cluster
    latencies = []
    cluster.node("client").spawn("cli", _browse, BIDDING, "servlet1", 5, latencies)
    cluster.run(until=20.0)
    # After the warm-up scan completes (the first request may queue behind
    # it), queries hit the page cache: no full-seek latencies.
    assert max(latencies[1:]) < BIDDING.servlet_cpu + 10e-3
