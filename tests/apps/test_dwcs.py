"""DWCS algorithm: precedence rules, window adjustments, properties."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.scheduling.dwcs import DwcsScheduler, DwcsStream


class FakeRequest:
    __slots__ = ("arrival", "deadline", "seq", "name")

    def __init__(self, arrival, name="r"):
        self.arrival = arrival
        self.deadline = None
        self.seq = 0
        self.name = name


def make_scheduler(streams, drop_factor=None):
    scheduler = DwcsScheduler(drop_factor=drop_factor)
    for args in streams:
        scheduler.add_stream(DwcsStream(*args))
    return scheduler


def test_stream_validation():
    with pytest.raises(ValueError):
        DwcsStream("s", 0.0, 1, 2)
    with pytest.raises(ValueError):
        DwcsStream("s", 1.0, 3, 2)
    with pytest.raises(ValueError):
        DwcsStream("s", 1.0, 1, 0)


def test_deadline_assigned_on_enqueue():
    scheduler = make_scheduler([("a", 0.5, 1, 2)])
    request = FakeRequest(arrival=1.0)
    scheduler.submit("a", request)
    assert request.deadline == 1.5


def test_earliest_deadline_first():
    scheduler = make_scheduler([("fast", 0.1, 1, 2), ("slow", 1.0, 1, 2)])
    scheduler.submit("slow", FakeRequest(0.0))
    scheduler.submit("fast", FakeRequest(0.0))
    stream, _request = scheduler.pick(0.0)
    assert stream.name == "fast"


def test_equal_deadline_lower_window_constraint_wins():
    scheduler = make_scheduler([("tight", 1.0, 1, 10), ("loose", 1.0, 5, 10)])
    scheduler.submit("loose", FakeRequest(0.0))
    scheduler.submit("tight", FakeRequest(0.0))
    stream, _request = scheduler.pick(0.0)
    assert stream.name == "tight"


def test_equal_everything_fcfs():
    scheduler = make_scheduler([("a", 1.0, 1, 2), ("b", 1.0, 1, 2)])
    scheduler.submit("b", FakeRequest(0.0))
    scheduler.submit("a", FakeRequest(0.0))
    stream, _ = scheduler.pick(0.0)
    assert stream.name == "b"  # submitted first


def test_zero_constraint_highest_denominator_wins():
    scheduler = make_scheduler([("x", 1.0, 1, 2), ("y", 1.0, 1, 4)])
    # Force both to W' = 0 via misses.
    for name in ("x", "y"):
        scheduler.streams[name].on_drop()
    assert scheduler.streams["x"].window_constraint == 0.0
    scheduler.submit("x", FakeRequest(0.0))
    scheduler.submit("y", FakeRequest(0.0))
    stream, _ = scheduler.pick(0.0)
    assert stream.name == "y"  # y' = 3 beats y' = 1


def test_service_before_deadline_decrements_window():
    stream = DwcsStream("s", 1.0, 2, 5)
    stream.on_service(before_deadline=True)
    assert (stream.x_cur, stream.y_cur) == (2, 4)
    assert stream.serviced == 1 and stream.missed == 0


def test_window_resets_after_y_services():
    stream = DwcsStream("s", 1.0, 2, 3)
    for _ in range(3):
        stream.on_service(before_deadline=True)
    assert (stream.x_cur, stream.y_cur) == (2, 3)


def test_miss_decrements_both_and_flags_violation():
    stream = DwcsStream("s", 1.0, 1, 5)
    stream.on_service(before_deadline=False)
    assert (stream.x_cur, stream.y_cur) == (0, 4)
    assert stream.violations == 0
    stream.on_service(before_deadline=False)
    assert stream.violations == 1
    assert stream.x_cur == 0  # clamped


def test_drop_counts_as_miss():
    stream = DwcsStream("s", 1.0, 1, 5)
    stream.on_drop()
    assert stream.dropped == 1 and stream.missed == 1
    assert (stream.x_cur, stream.y_cur) == (0, 4)


def test_shed_late_drops_hopeless_requests():
    scheduler = make_scheduler([("a", 0.1, 1, 2)], drop_factor=2.0)
    scheduler.submit("a", FakeRequest(0.0))  # deadline 0.1, shed after 0.3
    scheduler.submit("a", FakeRequest(1.0))
    shed = scheduler.shed_late(1.0)
    assert len(shed) == 1
    assert scheduler.streams["a"].dropped == 1
    assert scheduler.backlog == 1


def test_no_shedding_without_drop_factor():
    scheduler = make_scheduler([("a", 0.1, 1, 2)])
    scheduler.submit("a", FakeRequest(0.0))
    assert scheduler.shed_late(100.0) == []


def test_pick_empty_returns_none():
    scheduler = make_scheduler([("a", 1.0, 1, 2)])
    assert scheduler.pick(0.0) is None


def test_pick_marks_miss_when_late():
    scheduler = make_scheduler([("a", 0.1, 1, 2)])
    scheduler.submit("a", FakeRequest(0.0))
    stream, _ = scheduler.pick(5.0)
    assert stream.missed == 1


def test_stats_shape():
    scheduler = make_scheduler([("a", 1.0, 1, 2)])
    scheduler.submit("a", FakeRequest(0.0))
    stats = scheduler.stats()
    assert stats["a"]["arrivals"] == 1
    assert stats["a"]["queued"] == 1


@given(st.lists(st.sampled_from(["service", "miss", "drop"]), max_size=200))
def test_window_invariants_hold(operations):
    """Property: 0 <= x' <= x, 1 <= y' <= y, and x' <= y' always."""
    stream = DwcsStream("s", 1.0, 2, 7)
    for operation in operations:
        if operation == "service":
            stream.on_service(before_deadline=True)
        elif operation == "miss":
            stream.on_service(before_deadline=False)
        else:
            stream.on_drop()
        assert 0 <= stream.x_cur <= stream.x
        assert 1 <= stream.y_cur <= stream.y
        assert stream.x_cur <= stream.y_cur


@given(
    st.lists(st.tuples(st.sampled_from(["hi", "lo"]), st.floats(0, 10)),
             min_size=1, max_size=60)
)
def test_scheduler_conserves_requests(submissions):
    """Every submitted request is eventually picked exactly once."""
    scheduler = make_scheduler([("hi", 0.5, 1, 10), ("lo", 2.0, 4, 10)])
    for name, arrival in submissions:
        scheduler.submit(name, FakeRequest(arrival))
    picked = []
    while True:
        result = scheduler.pick(5.0)
        if result is None:
            break
        picked.append(result[1])
    assert len(picked) == len(submissions)
    assert len(set(id(r) for r in picked)) == len(submissions)
    assert scheduler.backlog == 0


# ----------------------------------------------------------------------
# Slot-level scheduling properties (the guarantee from West/Schwan's
# DWCS papers: with unit service times, a stream set whose minimum
# aggregate utilization sum((y-x)/(y*T)) <= 1 suffers no window
# violations; late packets are dropped, as in the loss-tolerant
# streaming setting DWCS was designed for).
# ----------------------------------------------------------------------

def _slot_simulate(stream_specs, slots):
    """Drive the scheduler slot by slot; each stream emits one unit
    packet per period.  Returns the scheduler after ``slots`` slots."""
    scheduler = DwcsScheduler(drop_factor=0.0)
    for name, period, x, y in stream_specs:
        scheduler.add_stream(DwcsStream(name, float(period), x, y))
    for slot in range(slots):
        now = float(slot)
        for name, period, _x, _y in stream_specs:
            if slot % period == 0:
                scheduler.submit(name, FakeRequest(now, name))
        # Packets whose deadline has passed are lost (streaming semantics).
        scheduler.shed_late(now)
        scheduler.pick(now)  # serve one unit packet this slot
    scheduler.shed_late(float(slots))
    return scheduler


def test_feasible_stream_set_has_no_violations():
    # min aggregate utilization: 1/4 + 1/4 + 1/8 = 0.625 <= 1
    specs = [("a", 2, 1, 2), ("b", 2, 1, 2), ("c", 4, 2, 4)]
    scheduler = _slot_simulate(specs, slots=400)
    for name, _period, _x, _y in specs:
        assert scheduler.streams[name].violations == 0, name


def test_feasible_set_meets_minimum_throughput():
    """Each stream must get at least (1 - x/y) of its packets served."""
    specs = [("a", 2, 1, 2), ("b", 2, 1, 2), ("c", 4, 2, 4)]
    slots = 400
    scheduler = _slot_simulate(specs, slots=slots)
    for name, period, x, y in specs:
        stream = scheduler.streams[name]
        generated = slots // period
        required = (1.0 - x / y) * generated
        served_in_time = stream.serviced - (stream.missed - stream.dropped)
        assert served_in_time >= required * 0.95, (name, stream.stats())


def test_overloaded_stream_set_violates():
    # Three no-loss streams each demanding every other slot: util 1.5 > 1.
    specs = [("a", 2, 0, 2), ("b", 2, 0, 2), ("c", 2, 0, 2)]
    scheduler = _slot_simulate(specs, slots=100)
    total_violations = sum(
        scheduler.streams[name].violations for name, *_ in specs
    )
    assert total_violations > 0


def test_tight_stream_prioritized_over_loose_under_contention():
    """Under persistent overload the loss lands on the loss-tolerant
    stream, not the no-loss stream."""
    specs = [("noloss", 2, 0, 2), ("tolerant", 2, 3, 4), ("filler", 2, 3, 4)]
    scheduler = _slot_simulate(specs, slots=200)
    assert scheduler.streams["noloss"].violations == 0
    assert (
        scheduler.streams["noloss"].dropped
        < scheduler.streams["tolerant"].dropped
    )
