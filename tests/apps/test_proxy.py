"""Forwarding proxy: worker and event-loop modes, routing."""

import pytest

from repro.apps.common.proxy import ForwardingProxy, field_route, hash_route
from repro.cluster import Cluster


def build(mode, backends=2):
    cluster = Cluster(seed=23)
    cluster.add_node("client")
    cluster.add_node("proxy")
    backend_names = []
    for index in range(backends):
        name = "be{}".format(index + 1)
        cluster.add_node(name)
        backend_names.append(name)

    served = {name: [] for name in backend_names}

    def backend(ctx, name):
        lsock = yield from ctx.listen(7000)
        while True:
            sock = yield from ctx.accept(lsock)
            ctx.spawn("h", _handler, sock, name)

    def _handler(ctx, sock, name):
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            served[name].append(message.meta.get("path"))
            yield from ctx.send_message(sock, 256, kind="ok", meta=message.meta)

    for name in backend_names:
        cluster.node(name).spawn("srv", backend, name)

    proxy = ForwardingProxy(
        cluster.node("proxy"), 7000,
        {name: (name, 7000) for name in backend_names},
        mode=mode,
    ).start()
    return cluster, proxy, served


def _client(ctx, paths, replies):
    sock = yield from ctx.connect("proxy", 7000)
    for path in paths:
        yield from ctx.send_message(sock, 1000, kind="req", meta={"path": path})
        reply = yield from ctx.recv_message(sock)
        replies.append(reply.meta.get("path"))
    yield from ctx.close(sock)


@pytest.mark.parametrize("mode", ["worker", "eventloop"])
def test_forwarding_roundtrip(mode):
    cluster, proxy, served = build(mode)
    replies = []
    paths = ["/a", "/b", "/c", "/d"]
    cluster.node("client").spawn("cli", _client, paths, replies)
    cluster.run(until=5.0)
    assert replies == paths
    assert proxy.forwarded == 4
    assert proxy.replied == 4
    assert sum(len(v) for v in served.values()) == 4


@pytest.mark.parametrize("mode", ["worker", "eventloop"])
def test_same_path_sticks_to_one_backend(mode):
    cluster, proxy, served = build(mode)
    replies = []
    cluster.node("client").spawn("cli", _client, ["/same"] * 6, replies)
    cluster.run(until=5.0)
    assert sorted(proxy.per_backend.values()) == [0, 6]


def test_eventloop_multiplexes_concurrent_clients():
    cluster, proxy, served = build("eventloop")
    cluster.add_node("client2")
    replies_a, replies_b = [], []
    cluster.node("client").spawn("c1", _client, ["/x"] * 3, replies_a)
    cluster.node("client2").spawn("c2", _client, ["/y"] * 3, replies_b)
    cluster.run(until=5.0)
    assert replies_a == ["/x"] * 3
    assert replies_b == ["/y"] * 3
    assert proxy.connections == 2


def test_worker_mode_spawns_worker_per_connection():
    cluster, proxy, served = build("worker")
    cluster.add_node("client2")
    replies_a, replies_b = [], []
    cluster.node("client").spawn("c1", _client, ["/x"], replies_a)
    cluster.node("client2").spawn("c2", _client, ["/y"], replies_b)
    cluster.run(until=5.0)
    workers = [
        task for task in cluster.node("proxy").kernel.tasks.values()
        if task.name.startswith("proxy-w")
    ]
    assert len(workers) == 2


def test_invalid_mode_rejected():
    cluster = Cluster(seed=1)
    node = cluster.add_node("p")
    with pytest.raises(ValueError):
        ForwardingProxy(node, 80, {}, mode="bogus")


def test_hash_route_deterministic():
    class Msg:
        meta = {"path": "/vol/file7"}
        msg_id = 1

    keys = ["a", "b", "c"]
    assert hash_route(Msg(), keys) == hash_route(Msg(), keys)


def test_field_route_honors_explicit_target():
    class Msg:
        def __init__(self, servlet):
            self.meta = {"servlet": servlet}

    route = field_route("servlet")
    assert route(Msg("b"), ["a", "b"]) == "b"
    # Unknown target falls back to a stable hash.
    assert route(Msg("ghost"), ["a", "b"]) in ("a", "b")
