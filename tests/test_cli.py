"""The `python -m repro` experiment runner."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "microbench" in out and "rubis" in out and "nfs" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_parser_defaults():
    args = build_parser().parse_args(["rubis"])
    assert args.scheduler == "both"
    assert args.duration == 20.0
    args = build_parser().parse_args(["nfs", "--threads", "1,2"])
    assert args.threads == "1,2"


def test_nfs_command_small(capsys):
    assert main(["nfs", "--threads", "1", "--ops", "6"]) == 0
    out = capsys.readouterr().out
    assert "Figures 4 & 5" in out
    assert "proxy user ms" in out


def test_rubis_command_single_scheduler(capsys):
    assert main(["rubis", "--scheduler", "dwcs", "--duration", "4"]) == 0
    out = capsys.readouterr().out
    assert "bidding" in out and "comment" in out


def test_microbench_quick(capsys):
    assert main(["microbench", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "linpack" in out
    assert "overhead vs configuration" in out


def test_failures_parser_defaults():
    args = build_parser().parse_args(["failures"])
    assert args.scenario == "both"
    assert args.seed == 9
    assert args.fault_start == 6.0
    assert args.fault_duration == 5.0


def test_diagnose_parser_defaults():
    args = build_parser().parse_args(["diagnose"])
    assert args.smoke is False
    assert args.seed is None


def test_diagnose_smoke_command(capsys):
    assert main(["diagnose", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "online diagnosis closed loop" in out
    assert "closed loop complete" in out
    assert "blame" in out


def test_failures_command_single_scenario(capsys):
    assert main([
        "failures", "--scenario", "daemon-crash",
        "--fault-start", "3", "--fault-duration", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "failure injection" in out
    assert "daemon-crash" in out
    assert "reconnects" in out


def test_calibrate_parser_defaults():
    args = build_parser().parse_args(["calibrate"])
    assert args.smoke is False
    assert args.seed == 23
    assert args.resource is None
    assert args.no_record is False
    assert args.jobs == 1


def test_calibrate_partial_run_skips_trajectory(capsys, tmp_path):
    # A single fast resource keeps this tier-1-cheap; partial selections
    # must never rewrite the committed BENCH trajectory.
    assert main([
        "calibrate", "--smoke", "--resource", "kprof_buffer",
    ]) == 0
    out = capsys.readouterr().out
    assert "kprof_buffer" in out
    assert "1/1 within tolerance" in out
    assert "BENCH_calibration.json not updated" in out


def test_microbench_quick_skips_trajectory(capsys):
    assert main(["microbench", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "BENCH_microbench.json not updated" in out
