"""Administrative link state and switch partitions (fault-injection plane)."""

import pytest

from repro.netsim import Address, Fabric, Link, Packet


def _fabric_pair(sim):
    fabric = Fabric(sim, bandwidth_bps=1e9, latency=10e-6)
    a = fabric.create_nic()
    b = fabric.create_nic()
    received = []
    a.rx_handler = lambda packet: received.append(("a", packet))
    b.rx_handler = lambda packet: received.append(("b", packet))
    return fabric, a, b, received


def test_link_admin_down_drops_after_serialization(sim):
    delivered = []
    link = Link(sim, bandwidth_bps=8_000_000, latency=0.0,
                deliver=lambda p: delivered.append(p))
    link.set_admin(False)
    packet = Packet(Address("10.0.0.1", 1), Address("10.0.0.2", 2), 500)
    link.transmit(packet)
    sim.run()
    # The wire still clocked the bits out: tx counted, delivery did not.
    assert delivered == []
    assert link.admin_dropped == 1
    assert link.tx_packets == 1
    link.set_admin(True)
    link.transmit(packet)
    sim.run()
    assert len(delivered) == 1
    assert link.admin_dropped == 1


def test_switch_port_admin_cuts_both_directions(sim):
    fabric, a, b, received = _fabric_pair(sim)
    fabric.set_link_admin(b.ip, False)
    assert fabric.link_admin(b.ip) is False
    assert fabric.link_admin(a.ip) is True
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 200))
    b.enqueue(Packet(Address(b.ip, 2), Address(a.ip, 1), 200))
    sim.run()
    assert received == []
    fabric.set_link_admin(b.ip, True)
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 200))
    sim.run()
    assert [dest for dest, _ in received] == ["b"]


def test_switch_port_admin_unknown_ip_raises(sim):
    fabric = Fabric(sim)
    fabric.create_nic()
    with pytest.raises(KeyError):
        fabric.switch.set_port_admin("10.9.9.9", False)


def test_partition_drops_cross_group_only(sim):
    fabric, a, b, received = _fabric_pair(sim)
    mgmt = fabric.create_nic()
    mgmt.rx_handler = lambda packet: received.append(("m", packet))
    fabric.partition([a.ip], [b.ip])  # mgmt stays unmapped
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 200))   # dropped
    a.enqueue(Packet(Address(a.ip, 1), Address(mgmt.ip, 2), 200))  # passes
    b.enqueue(Packet(Address(b.ip, 2), Address(mgmt.ip, 2), 200))  # passes
    sim.run()
    assert sorted(dest for dest, _ in received) == ["m", "m"]
    assert fabric.switch.partition_dropped == 1
    assert fabric.stats()["partition_dropped"] == 1
    fabric.heal()
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 200))
    sim.run()
    assert ("b", received[-1][1]) == received[-1]


def test_partition_rejects_overlapping_groups(sim):
    fabric = Fabric(sim)
    a = fabric.create_nic()
    b = fabric.create_nic()
    with pytest.raises(ValueError):
        fabric.partition([a.ip], [a.ip, b.ip])


def test_reachable_matrix(sim):
    fabric = Fabric(sim)
    a = fabric.create_nic()
    b = fabric.create_nic()
    mgmt = fabric.create_nic()
    assert fabric.reachable(a.ip, b.ip)
    assert fabric.reachable(a.ip, a.ip)  # loopback is always fine

    fabric.partition([a.ip], [b.ip])
    assert not fabric.reachable(a.ip, b.ip)
    assert not fabric.reachable(b.ip, a.ip)
    assert fabric.reachable(a.ip, mgmt.ip)  # unmapped node sees both sides
    assert fabric.reachable(b.ip, mgmt.ip)
    fabric.heal()
    assert fabric.reachable(a.ip, b.ip)

    fabric.set_link_admin(b.ip, False)
    assert not fabric.reachable(a.ip, b.ip)
    assert not fabric.reachable(b.ip, mgmt.ip)  # b is dark in both directions
    assert fabric.reachable(a.ip, mgmt.ip)
    fabric.set_link_admin(b.ip, True)
    assert fabric.reachable(a.ip, b.ip)
