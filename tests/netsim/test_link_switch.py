"""Link serialization/latency/loss and switch forwarding."""

import pytest

from repro.netsim import Address, Fabric, Link, Packet
from repro.sim import RandomStreams


def _packet(size=1000, frames=1):
    return Packet(Address("10.0.0.1", 1), Address("10.0.0.2", 2), size, frames=frames)


def test_link_serialization_plus_latency(sim):
    arrivals = []
    link = Link(sim, bandwidth_bps=8_000_000, latency=1e-3,
                deliver=lambda p: arrivals.append(sim.now))
    packet = _packet(size=1000 - Packet.HEADER_BYTES)  # wire = 1000B = 1ms at 8Mbps
    link.transmit(packet)
    sim.run()
    assert arrivals == [pytest.approx(2e-3)]


def test_link_serializes_back_to_back(sim):
    arrivals = []
    link = Link(sim, bandwidth_bps=8_000_000, latency=0.0,
                deliver=lambda p: arrivals.append(sim.now))
    for _ in range(3):
        link.transmit(_packet(size=1000 - Packet.HEADER_BYTES))
    sim.run()
    assert arrivals == [pytest.approx(1e-3 * k) for k in (1, 2, 3)]


def test_link_blocking_transmit_signals_completion(sim):
    link = Link(sim, bandwidth_bps=8_000_000, latency=5e-3, deliver=lambda p: None)
    done = link.transmit_blocking(_packet(size=1000 - Packet.HEADER_BYTES))
    sim.run(until=1.5e-3)
    assert done.triggered  # after serialization, before propagation ends


def test_link_loss_drops_packets(sim):
    rng = RandomStreams(3).stream("loss")
    delivered = []
    link = Link(sim, bandwidth_bps=1e9, latency=0.0,
                deliver=lambda p: delivered.append(p), loss_rate=0.5, rng=rng)
    for _ in range(200):
        link.transmit(_packet())
    sim.run()
    assert link.dropped > 50
    assert len(delivered) == 200 - link.dropped


def test_link_requires_rng_for_loss(sim):
    with pytest.raises(ValueError):
        Link(sim, 1e9, 0.0, lambda p: None, loss_rate=0.1)


def test_link_utilization_counts_busy_time(sim):
    link = Link(sim, bandwidth_bps=8_000_000, latency=0.0, deliver=lambda p: None)
    link.transmit(_packet(size=1000 - Packet.HEADER_BYTES))
    sim.run()
    assert link.busy_time == pytest.approx(1e-3)
    assert link.tx_packets == 1


def test_fabric_assigns_unique_ips(sim):
    fabric = Fabric(sim)
    nics = [fabric.create_nic() for _ in range(3)]
    assert len({nic.ip for nic in nics}) == 3


def test_fabric_rejects_duplicate_ip(sim):
    fabric = Fabric(sim)
    fabric.create_nic(ip="10.0.0.1")
    with pytest.raises(ValueError):
        fabric.create_nic(ip="10.0.0.1")


def test_switch_routes_between_nics(sim):
    fabric = Fabric(sim, bandwidth_bps=1e9, latency=10e-6)
    a = fabric.create_nic()
    b = fabric.create_nic()
    received = []
    b.rx_handler = lambda packet: received.append((sim.now, packet))
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 500))
    sim.run()
    assert len(received) == 1
    # two hops of latency + forwarding + two serializations
    assert received[0][0] > 20e-6


def test_switch_counts_unroutable(sim):
    fabric = Fabric(sim)
    a = fabric.create_nic()
    a.enqueue(Packet(Address(a.ip, 1), Address("10.9.9.9", 2), 500))
    sim.run()
    assert fabric.switch.unroutable == 1


def test_fabric_stats_shape(sim):
    fabric = Fabric(sim)
    a = fabric.create_nic()
    b = fabric.create_nic()
    b.rx_handler = lambda packet: None
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 100))
    sim.run()
    stats = fabric.stats()
    assert stats["forwarded"] == 1
    assert set(stats["ports"]) == {a.ip, b.ip}


def test_nic_rx_drops_without_handler(sim):
    fabric = Fabric(sim)
    a = fabric.create_nic()
    b = fabric.create_nic()
    a.enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 100))
    sim.run()
    assert b.rx_dropped == 1


def test_nic_ring_backpressure(sim):
    fabric = Fabric(sim, bandwidth_bps=1_000_000)  # slow link
    a = fabric.create_nic()
    b = fabric.create_nic()
    b.rx_handler = lambda packet: None
    # Fill beyond the ring: try_enqueue should eventually refuse.
    refused = 0
    for _ in range(400):
        if not a.try_enqueue(Packet(Address(a.ip, 1), Address(b.ip, 2), 1500)):
            refused += 1
    assert refused > 0
    sim.run()
