"""Spine/leaf fabric: multi-switch routing, latency, and partitions."""

import pytest

from repro.cluster import Cluster, build_spine_leaf
from repro.netsim.packet import Address, Packet


def _echo(ctx, port=9000):
    lsock = yield from ctx.listen(port)
    sock = yield from ctx.accept(lsock)
    while True:
        message = yield from ctx.recv_message(sock)
        if message is None:
            break
        yield from ctx.send_message(sock, 500, kind="reply")


def _client(ctx, server, replies, port=9000, count=3):
    sock = yield from ctx.connect(server, port)
    for _ in range(count):
        yield from ctx.send_message(sock, 1000)
        reply = yield from ctx.recv_message(sock)
        replies.append(reply.size)
    yield from ctx.close(sock)


def _build(racks=2, per=2):
    cluster = Cluster(seed=5)
    topology = build_spine_leaf(
        cluster, racks=racks, nodes_per_rack=per, with_rack_gpa=False,
        mgmt_node="mgmt",
    )
    return cluster, topology


def test_cross_rack_traffic_routes_through_spine():
    cluster, _ = _build()
    replies = []
    cluster.node("r1n0").spawn("srv", _echo)
    cluster.node("r0n0").spawn("cli", _client, "r1n0", replies)
    cluster.run(until=2.0)
    assert replies == [500, 500, 500]
    fabric = cluster.fabric
    # Leaf switches and the spine all forwarded; nothing was unroutable.
    assert fabric.switches["r0-leaf"].forwarded > 0
    assert fabric.switches["r1-leaf"].forwarded > 0
    assert fabric.switch.forwarded > 0
    assert fabric.stats()["unroutable"] == 0


def test_same_rack_traffic_stays_on_the_leaf():
    cluster, _ = _build()
    replies = []
    cluster.node("r0n1").spawn("srv", _echo)
    cluster.node("r0n0").spawn("cli", _client, "r0n1", replies)
    cluster.run(until=2.0)
    assert replies == [500, 500, 500]
    assert cluster.fabric.switch.forwarded == 0  # spine never touched


def test_same_switch_path_latency_matches_flat_constant():
    """Flat clusters must keep the exact pre-federation RTT (digest
    compatibility): same-switch path latency is 2*latency + forward_delay."""
    flat = Cluster(seed=1)
    flat.add_node("a")
    flat.add_node("b")
    fabric = flat.fabric
    expected = 2.0 * fabric.latency + fabric.switch.forward_delay
    assert flat.one_way_latency(flat.node("a").ip, flat.node("b").ip) == expected
    assert flat.one_way_latency() == expected


def test_cross_rack_latency_exceeds_same_rack():
    cluster, _ = _build()
    same = cluster.one_way_latency(
        cluster.node("r0n0").ip, cluster.node("r0n1").ip
    )
    cross = cluster.one_way_latency(
        cluster.node("r0n0").ip, cluster.node("r1n0").ip
    )
    to_mgmt = cluster.one_way_latency(
        cluster.node("r0n0").ip, cluster.node("mgmt").ip
    )
    assert cross > same
    assert to_mgmt > same
    assert cross > to_mgmt  # two leaf hops vs one


def test_partition_applies_across_all_switches():
    cluster, topology = _build()
    r0 = [cluster.node(name).ip for name in topology.racks[0].nodes]
    r1 = [cluster.node(name).ip for name in topology.racks[1].nodes]
    cluster.fabric.partition(r0, r1)
    assert not cluster.fabric.reachable(r0[0], r1[0])
    assert cluster.fabric.reachable(r0[0], r0[1])
    # mgmt is in no group: it still sees both sides.
    assert cluster.fabric.reachable(cluster.node("mgmt").ip, r0[0])
    assert cluster.fabric.reachable(cluster.node("mgmt").ip, r1[0])
    cluster.fabric.heal()
    assert cluster.fabric.reachable(r0[0], r1[0])


def test_unroutable_packet_is_counted_not_delivered():
    cluster, _ = _build()
    spine = cluster.fabric.switch
    before = spine.unroutable
    packet = Packet(Address("10.9.9.1", 1), Address("10.9.9.2", 2), 64)
    spine._forward(packet)
    assert spine.unroutable == before + 1


def test_second_uplink_rejected():
    cluster, _ = _build()
    leaf = cluster.fabric.switches["r0-leaf"]
    with pytest.raises(ValueError):
        leaf.connect(cluster.fabric.switches["r1-leaf"], uplink=True)


def test_fabric_stats_aggregate_switches():
    cluster, _ = _build()
    replies = []
    cluster.node("r1n0").spawn("srv", _echo)
    cluster.node("r0n0").spawn("cli", _client, "r1n0", replies)
    cluster.run(until=2.0)
    stats = cluster.fabric.stats()
    assert stats["switches"] == 3  # spine + 2 leaves
    total = sum(
        sw.forwarded for sw in cluster.fabric.switches.values()
    )
    assert stats["forwarded"] == total
