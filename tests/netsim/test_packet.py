"""Addresses, flow keys, packet framing."""

from repro.netsim import Address, FlowKey, Packet


def test_address_fields():
    addr = Address("10.0.0.1", 80)
    assert addr.ip == "10.0.0.1"
    assert addr.port == 80
    assert repr(addr) == "10.0.0.1:80"


def test_address_equality_and_hash():
    assert Address("10.0.0.1", 80) == Address("10.0.0.1", 80)
    assert len({Address("10.0.0.1", 80), Address("10.0.0.1", 80)}) == 1


def test_flow_key_direction_independent():
    a = Address("10.0.0.1", 1234)
    b = Address("10.0.0.2", 80)
    assert FlowKey(a, b) == FlowKey(b, a)
    assert hash(FlowKey(a, b)) == hash(FlowKey(b, a))


def test_flow_key_endpoints_sorted():
    a = Address("10.0.0.9", 1)
    b = Address("10.0.0.1", 9)
    key = FlowKey(a, b)
    assert key.low == b
    assert key.high == a


def test_packet_wire_size_includes_headers():
    a, b = Address("10.0.0.1", 1), Address("10.0.0.2", 2)
    packet = Packet(a, b, 1000)
    assert packet.wire_size == 1000 + Packet.HEADER_BYTES


def test_aggregated_packet_header_per_frame():
    a, b = Address("10.0.0.1", 1), Address("10.0.0.2", 2)
    packet = Packet(a, b, 4000, frames=4)
    assert packet.wire_size == 4000 + 4 * Packet.HEADER_BYTES


def test_packet_ids_unique():
    a, b = Address("10.0.0.1", 1), Address("10.0.0.2", 2)
    assert Packet(a, b, 1).packet_id != Packet(a, b, 1).packet_id


def test_packet_flow_key():
    a, b = Address("10.0.0.1", 5), Address("10.0.0.2", 6)
    assert Packet(a, b, 1).flow_key == Packet(b, a, 1).flow_key
