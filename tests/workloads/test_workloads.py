"""Workload generators: linpack, iperf, iozone, httperf."""

import pytest

from repro.apps.nfs.service import VirtualStorageService
from repro.apps.rubis.requests import BIDDING, COMMENT
from repro.cluster import Cluster
from repro.workloads.httperf import HttperfConfig, spawn_httperf
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone
from repro.workloads.iperf import IperfRun, run_iperf
from repro.workloads.linpack import FLOPS_PER_SECOND, spawn_linpack


def test_linpack_mflops_matches_cpu_rate():
    cluster = Cluster(seed=1)
    node = cluster.add_node("n1")
    task = spawn_linpack(node, duration=0.5)
    cluster.run(until=1.0)
    result = task.exit_value
    assert result.mflops == pytest.approx(FLOPS_PER_SECOND / 1e6, rel=0.01)
    assert result.iterations > 0


def test_linpack_shares_cpu_fairly():
    cluster = Cluster(seed=1)
    node = cluster.add_node("n1")
    a = spawn_linpack(node, duration=0.5)
    b = spawn_linpack(node, duration=0.5)
    cluster.run(until=1.0)
    # Two instances halve each other's MFLOPS.
    assert a.exit_value.mflops == pytest.approx(
        FLOPS_PER_SECOND / 2e6, rel=0.05
    )


def test_iperf_cpu_limited_on_gigabit():
    cluster = Cluster(seed=42)
    cluster.add_node("tx")
    cluster.add_node("rx")
    result = run_iperf(cluster, "tx", "rx", duration=0.2)
    # Calibration anchor: ~930 Mbps CPU-limited baseline (paper §3.1).
    assert 850 < result.mbps < 1000


def test_iperf_link_limited_on_fast_ethernet():
    cluster = Cluster(seed=42, bandwidth_bps=100_000_000)
    cluster.add_node("tx")
    cluster.add_node("rx")
    result = run_iperf(cluster, "tx", "rx", duration=0.2)
    assert 85 < result.mbps <= 100


def test_iperf_snapshot_mbps():
    cluster = Cluster(seed=42)
    run = IperfRun(
        cluster.add_node("tx"), cluster.add_node("rx"), duration=0.3
    ).start()
    cluster.sim.run(until=0.15)
    assert run.snapshot_mbps(cluster.sim.now) > 100


def _storage(seed=9):
    cluster = Cluster(seed=seed)
    cluster.add_node("client1")
    cluster.add_node("proxy")
    cluster.add_node("backend1", with_disk=True)
    VirtualStorageService(cluster, "proxy", ["backend1"]).start()
    return cluster


def test_iozone_thread_and_op_counts():
    cluster = _storage()
    config = IozoneConfig(threads=2, ops_per_thread=5, rewrite=True, pipeline=2,
                          stable=False, commit_every=4)
    results = IozoneResults()
    spawn_iozone(cluster.node("client1"), "proxy", config, results)
    cluster.run(until=120.0)
    assert results.threads_done == 2
    writes = results.latencies(op="nfs-write")
    commits = results.latencies(op="nfs-commit")
    # 2 threads x 2 passes x 5 writes
    assert len(writes) == 20
    assert len(commits) >= 4  # at least one commit per pass per thread
    assert results.mean_latency > 0


def test_iozone_stable_mode_skips_commits():
    cluster = _storage()
    config = IozoneConfig(threads=1, ops_per_thread=4, rewrite=False,
                          pipeline=1, stable=True)
    results = IozoneResults()
    spawn_iozone(cluster.node("client1"), "proxy", config, results)
    cluster.run(until=120.0)
    assert results.latencies(op="nfs-commit") == []
    assert len(results.latencies(op="nfs-write")) == 4


class _SinkDispatcher:
    def __init__(self):
        self.requests = []

    def submit(self, request):
        self.requests.append(request)


def test_httperf_generates_poisson_arrivals():
    cluster = Cluster(seed=5)
    node = cluster.add_node("client")
    sink = _SinkDispatcher()
    config = HttperfConfig(
        sessions_per_class=10, rate_per_class=50.0, duration=4.0, start=0.0
    )
    _tasks, stats = spawn_httperf(node, sink, config, cluster.streams)
    cluster.run(until=5.0)
    generated = stats.generated
    # ~50/s x 4s = 200 per class, Poisson: allow generous slack.
    for profile in (BIDDING, COMMENT):
        assert 150 < generated[profile.name] < 260
    assert stats.sessions_done == 20
    classes = {request.name for request in sink.requests}
    assert classes == {"bidding", "comment"}


def test_httperf_deterministic_across_runs():
    counts = []
    for _ in range(2):
        cluster = Cluster(seed=5)
        node = cluster.add_node("client")
        sink = _SinkDispatcher()
        config = HttperfConfig(sessions_per_class=5, rate_per_class=30.0,
                               duration=2.0)
        _tasks, stats = spawn_httperf(node, sink, config, cluster.streams)
        cluster.run(until=3.0)
        counts.append(
            tuple(sorted((request.name, round(request.arrival, 9))
                         for request in sink.requests))
        )
    assert counts[0] == counts[1]
