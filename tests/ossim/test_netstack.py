"""Network stack: segmentation, tracepoint events, per-layer timestamps."""

import math

import pytest

from repro.cluster import Cluster
from repro.core import Kprof
from repro.ossim import tracepoints as tp


@pytest.fixture
def wired():
    cluster = Cluster(seed=4)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    return cluster, a, b


def _transfer(cluster, a, b, size, frame_batch=1):
    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        message = yield from ctx.recv_message(sock)
        return message

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        yield from ctx.send_message(sock, size, frame_batch=frame_batch)

    server_task = b.spawn("srv", server)
    a.spawn("cli", client)
    cluster.run(until=10.0)
    return server_task.exit_value


def test_segmentation_packet_count(wired):
    cluster, a, b = wired
    events = []
    kprof = Kprof(b.kernel).attach()
    kprof.subscribe([tp.SOCK_ENQUEUE], events.append, cost=0.0)
    size = 10_000
    _transfer(cluster, a, b, size)
    expected = math.ceil(size / cluster.costs.mtu)
    assert len(events) == expected
    assert sum(event["size"] for event in events) == size
    assert events[-1]["is_last"] and not events[0]["is_last"]


def test_frame_batching_reduces_packets_not_bytes(wired):
    cluster, a, b = wired
    events = []
    kprof = Kprof(b.kernel).attach()
    kprof.subscribe([tp.SOCK_ENQUEUE], events.append, cost=0.0)
    _transfer(cluster, a, b, 20_000, frame_batch=4)
    assert len(events) == math.ceil(20_000 / (4 * cluster.costs.mtu))
    assert sum(event["frames"] for event in events) == math.ceil(
        20_000 / cluster.costs.mtu
    )


def test_rx_layer_timestamps_ordered(wired):
    cluster, a, b = wired
    events = []
    kprof = Kprof(b.kernel).attach()
    kprof.subscribe(
        [tp.NET_RX_DRIVER, tp.NET_RX_IP, tp.NET_RX_TRANSPORT, tp.SOCK_ENQUEUE],
        events.append, cost=0.0,
    )
    _transfer(cluster, a, b, 1000)
    by_type = {event.etype: event.ts for event in events}
    assert (
        by_type[tp.NET_RX_DRIVER]
        < by_type[tp.NET_RX_IP]
        < by_type[tp.NET_RX_TRANSPORT]
        <= by_type[tp.SOCK_ENQUEUE]
    )


def test_tx_layer_timestamps_ordered(wired):
    cluster, a, b = wired
    events = []
    kprof = Kprof(a.kernel).attach()
    kprof.subscribe(
        [tp.NET_TX_SOCK, tp.NET_TX_IP, tp.NET_TX_DRIVER], events.append, cost=0.0
    )
    _transfer(cluster, a, b, 1000)
    by_type = {event.etype: event.ts for event in events}
    assert by_type[tp.NET_TX_SOCK] < by_type[tp.NET_TX_IP] < by_type[tp.NET_TX_DRIVER]


def test_rx_events_carry_flow_fields(wired):
    cluster, a, b = wired
    events = []
    kprof = Kprof(b.kernel).attach()
    kprof.subscribe([tp.SOCK_ENQUEUE], events.append, cost=0.0)
    _transfer(cluster, a, b, 500)
    event = events[0]
    assert event["dst_ip"] == b.ip
    assert event["src_ip"] == a.ip
    assert event["dst_port"] == 9000
    assert event["msg_kind"] == "data"
    assert event["rx_queue_depth"] == 0


def test_sock_deliver_fired_on_recv(wired):
    cluster, a, b = wired
    events = []
    kprof = Kprof(b.kernel).attach()
    kprof.subscribe([tp.SOCK_DELIVER], events.append, cost=0.0)
    message = _transfer(cluster, a, b, 500)
    assert len(events) == 1
    assert events[0]["size"] == 500
    assert events[0]["pid"] >= 100


def test_no_subscriber_means_no_events(wired):
    cluster, a, b = wired
    kprof = Kprof(b.kernel).attach()
    _transfer(cluster, a, b, 500)
    assert kprof.events_fired == {}


def test_monitoring_adds_kernel_time(wired):
    """Enabled probes must consume simulated CPU on the receive path."""
    cluster, a, b = wired
    kprof = Kprof(b.kernel).attach()
    kprof.subscribe(
        [tp.NET_RX_DRIVER, tp.NET_RX_IP, tp.NET_RX_TRANSPORT, tp.SOCK_ENQUEUE],
        lambda event: None,
    )
    before = b.kernel.cpu.mode_time["kernel"]
    _transfer(cluster, a, b, 100_000)
    monitored_kernel = b.kernel.cpu.mode_time["kernel"] - before

    cluster2 = Cluster(seed=4)
    a2 = cluster2.add_node("a")
    b2 = cluster2.add_node("b")
    before2 = b2.kernel.cpu.mode_time["kernel"]
    _transfer(cluster2, a2, b2, 100_000)
    baseline_kernel = b2.kernel.cpu.mode_time["kernel"] - before2
    assert monitored_kernel > baseline_kernel
