"""VFS page cache and block layer behaviour."""

import pytest

from repro.cluster import Cluster
from repro.ossim.vfs import _contiguous_runs


@pytest.fixture
def node():
    return Cluster(seed=5).add_node("store", with_disk=True)


def _run(node, fn, *args):
    task = node.spawn("fsuser", fn, *args)
    node.sim.run()
    return task.exit_value


def test_write_then_read_hits_cache(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        yield from ctx.write(handle, 8192, offset=0)
        t0 = ctx.now
        yield from ctx.read(handle, 8192, offset=0)
        return ctx.now - t0

    elapsed = _run(node, worker)
    assert elapsed < 1e-3  # no disk access
    assert node.kernel.disk.reads == 0
    assert node.kernel.vfs.cache_misses == 0


def test_cold_read_goes_to_disk(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        handle.inode.size = 65536  # pre-existing data
        yield from ctx.read(handle, 16384, offset=0)

    _run(node, worker)
    assert node.kernel.disk.reads == 1
    assert node.kernel.vfs.cache_misses == 4  # 4 pages


def test_contiguous_misses_coalesce_into_one_request(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        handle.inode.size = 1 << 20
        yield from ctx.read(handle, 1 << 20, offset=0)

    _run(node, worker)
    assert node.kernel.disk.reads == 1


def test_sync_write_blocks_on_media(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        t0 = ctx.now
        yield from ctx.write(handle, 16384, offset=0, sync=True)
        return ctx.now - t0

    elapsed = _run(node, worker)
    assert elapsed > 5e-3  # seek + rotation dominate
    assert node.kernel.disk.writes == 1


def test_unstable_write_is_fast_until_fsync(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        t0 = ctx.now
        for index in range(4):
            yield from ctx.write(handle, 16384, offset=index * 16384)
        cached = ctx.now - t0
        pages = yield from ctx.fsync(handle)
        return cached, pages

    cached, pages = _run(node, worker)
    assert cached < 1e-3
    assert pages == 16  # 64 KB dirty = 16 pages flushed
    assert node.kernel.disk.writes == 1  # one coalesced flush


def test_fsync_resets_dirty_state(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        yield from ctx.write(handle, 4096, offset=0)
        first = yield from ctx.fsync(handle)
        second = yield from ctx.fsync(handle)
        return first, second

    first, second = _run(node, worker)
    assert first == 1 and second == 0


def test_sequential_positioning_discount(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        t0 = ctx.now
        yield from ctx.write(handle, 4096, offset=0, sync=True)
        first = ctx.now - t0
        t1 = ctx.now
        yield from ctx.write(handle, 4096, offset=4096, sync=True)
        second = ctx.now - t1
        return first, second

    first, second = _run(node, worker)
    assert second < first / 5  # contiguous write skips seek + rotation


def test_eviction_writes_back_dirty_pages():
    cluster = Cluster(seed=6)
    node = cluster.add_node("small", with_disk=True, cache_pages=8)

    def worker(ctx):
        handle = yield from ctx.open("/f")
        for index in range(32):
            yield from ctx.write(handle, 4096, offset=index * 4096)

    node.spawn("w", worker)
    cluster.run()
    assert node.kernel.vfs.writeback_pages >= 24
    assert node.kernel.disk.writes > 0


def test_file_position_advances(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        yield from ctx.write(handle, 100)
        yield from ctx.write(handle, 100)
        return handle.position, handle.inode.size

    position, size = _run(node, worker)
    assert position == 200 and size == 200


def test_read_clamped_to_file_size(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        yield from ctx.write(handle, 100, offset=0)
        count = yield from ctx.read(handle, 1000, offset=0)
        return count

    assert _run(node, worker) == 100


def test_closed_handle_rejected(node):
    from repro.sim import SimError

    def worker(ctx):
        handle = yield from ctx.open("/f")
        yield from ctx.close_file(handle)
        try:
            yield from ctx.read(handle, 10)
        except SimError:
            return "rejected"

    assert _run(node, worker) == "rejected"


def test_open_missing_without_create(node):
    from repro.sim import SimError

    def worker(ctx):
        try:
            yield from ctx.open("/missing", create=False)
        except SimError:
            return "missing"

    assert _run(node, worker) == "missing"


def test_vfs_absent_without_disk():
    from repro.sim import SimError

    cluster = Cluster(seed=1)
    node = cluster.add_node("nodisk")

    def worker(ctx):
        try:
            yield from ctx.open("/f")
        except SimError:
            return "no-vfs"

    task = node.spawn("w", worker)
    cluster.run()
    assert task.exit_value == "no-vfs"


def test_disk_queue_depth_stats(node):
    def worker(ctx, index):
        handle = yield from ctx.open("/f{}".format(index))
        yield from ctx.write(handle, 16384, offset=0, sync=True)

    for index in range(4):
        node.spawn("w{}".format(index), worker, index)
    node.sim.run()
    assert node.kernel.disk.queue_stat.maximum >= 2
    assert node.kernel.disk.service_stat.count == 4


def test_task_disk_ops_counter(node):
    def worker(ctx):
        handle = yield from ctx.open("/f")
        yield from ctx.write(handle, 4096, sync=True)
        yield from ctx.fsync(handle)

    task = node.spawn("w", worker)
    node.sim.run()
    assert task.disk_ops == 1  # fsync found nothing dirty


def test_contiguous_runs_helper():
    assert _contiguous_runs([]) == []
    assert _contiguous_runs([1, 2, 3, 7, 9, 10]) == [(1, 3), (7, 7), (9, 10)]
