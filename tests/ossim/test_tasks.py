"""Task lifecycle, blocked-time accounting, /proc/stat."""

import pytest

from repro.cluster import Cluster
from repro.ossim.task import TASK_EXITED


@pytest.fixture
def node():
    return Cluster(seed=2).add_node("n1")


def test_sleep_accounts_blocked_time(node):
    def worker(ctx):
        yield from ctx.sleep(0.4)

    task = node.spawn("sleeper", worker)
    node.sim.run()
    assert task.blocked_time == pytest.approx(0.4, abs=1e-6)
    assert task.state == TASK_EXITED
    assert task.exited_at == pytest.approx(0.4, abs=1e-6)


def test_exit_value_preserved(node):
    def worker(ctx):
        yield from ctx.sleep(0.1)
        return {"answer": 42}

    task = node.spawn("w", worker)
    node.sim.run()
    assert task.exit_value == {"answer": 42}


def test_pids_are_unique_and_registered(node):
    def worker(ctx):
        yield from ctx.sleep(0.01)

    tasks = [node.spawn("w{}".format(i), worker) for i in range(4)]
    pids = [task.pid for task in tasks]
    assert len(set(pids)) == 4
    assert all(node.kernel.tasks[pid] is task for pid, task in zip(pids, tasks))


def test_spawn_nested_from_context(node):
    seen = []

    def child(ctx, tag):
        yield from ctx.sleep(0.05)
        seen.append(tag)

    def parent(ctx):
        inner = ctx.spawn("child", child, "hello")
        yield from ctx.wait(inner.proc)

    node.spawn("parent", parent)
    node.sim.run()
    assert seen == ["hello"]


def test_labels_attached(node):
    def worker(ctx):
        yield from ctx.sleep(0.01)

    task = node.spawn("w", worker, labels={"class": "gold"})
    assert task.labels["class"] == "gold"


def test_proc_stat_lists_tasks(node):
    def worker(ctx):
        yield from ctx.compute(0.02)
        yield from ctx.sleep(10.0)

    task = node.spawn("webserver", worker)
    node.sim.run(until=1.0)
    text = node.kernel.procfs.read("/proc/stat")
    assert "webserver" in text
    assert "utime=0.02" in text


def test_task_snapshot_counts_live_blocked_time(node):
    def worker(ctx):
        yield from ctx.sleep(100.0)

    task = node.spawn("w", worker)
    node.sim.run(until=2.0)
    snapshot = node.kernel.task_snapshot()
    assert snapshot[task.pid]["blocked"] == pytest.approx(2.0, abs=0.01)
    assert snapshot[task.pid]["state"] == "blocked"


def test_task_crash_propagates(node):
    def bad(ctx):
        yield from ctx.sleep(0.01)
        raise RuntimeError("task crashed")

    node.spawn("bad", bad)
    with pytest.raises(RuntimeError):
        node.sim.run()
