"""Socket layer: connections, message transfer, flow control, EOF."""

import pytest

from repro.cluster import Cluster
from repro.ossim.sockets import ByteCredits
from repro.sim import SimError


@pytest.fixture
def pair():
    cluster = Cluster(seed=3)
    return cluster, cluster.add_node("a"), cluster.add_node("b")


def _echo_server(ctx, port, sizes_seen):
    lsock = yield from ctx.listen(port)
    sock = yield from ctx.accept(lsock)
    while True:
        message = yield from ctx.recv_message(sock)
        if message is None:
            break
        sizes_seen.append(message.size)
        yield from ctx.send_message(sock, message.size, kind="echo")
    return "closed"


def test_message_roundtrip(pair):
    cluster, a, b = pair
    seen = []
    server = b.spawn("srv", _echo_server, 9000, seen)

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        yield from ctx.send_message(sock, 12345, kind="q")
        reply = yield from ctx.recv_message(sock)
        yield from ctx.close(sock)
        return reply.size

    task = a.spawn("cli", client)
    cluster.run()
    assert task.exit_value == 12345
    assert seen == [12345]
    assert server.exit_value == "closed"


def test_connect_to_missing_port_fails(pair):
    cluster, a, b = pair

    def client(ctx):
        yield from ctx.connect("b", 1234)

    a.spawn("cli", client)
    with pytest.raises(SimError, match="connection refused"):
        cluster.run()


def test_messages_preserve_order(pair):
    cluster, a, b = pair
    received = []

    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            received.append(message.meta["n"])

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        for n in range(10):
            yield from ctx.send_message(sock, 5000, meta={"n": n})
        yield from ctx.close(sock)

    b.spawn("srv", server)
    a.spawn("cli", client)
    cluster.run()
    assert received == list(range(10))


def test_zero_byte_message_delivered(pair):
    cluster, a, b = pair
    sizes = []
    b.spawn("srv", _echo_server, 9000, sizes)

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        yield from ctx.send_message(sock, 0, kind="ping")
        yield from ctx.recv_message(sock)
        yield from ctx.close(sock)

    a.spawn("cli", client)
    cluster.run()
    assert sizes == [0]


def test_flow_control_blocks_sender(pair):
    """Receiver never reads: sender must stall at the receive window."""
    cluster, a, b = pair

    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        yield from ctx.sleep(60.0)  # never read

    sent = []

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        for n in range(8):
            yield from ctx.send_message(sock, 100_000)
            sent.append(ctx.now)

    b.spawn("srv", server)
    client_task = a.spawn("cli", client)
    cluster.run(until=30.0)
    window = cluster.costs.sock_buffer_bytes
    # Only ~window/100k messages fit before the sender stalls.
    assert len(sent) <= window // 100_000 + 1
    assert client_task.is_alive
    live_blocked = client_task.blocked_time + (
        cluster.sim.now - client_task.blocked_since
    )
    assert live_blocked > 10.0
    assert client_task.block_reason == "sndbuf"


def test_reader_unblocks_stalled_sender(pair):
    cluster, a, b = pair
    received = []

    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        yield from ctx.sleep(5.0)
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            received.append(message.size)

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        for _ in range(8):
            yield from ctx.send_message(sock, 100_000)
        yield from ctx.close(sock)

    b.spawn("srv", server)
    a.spawn("cli", client)
    cluster.run(until=30.0)
    assert received == [100_000] * 8


def test_close_delivers_eof(pair):
    cluster, a, b = pair
    outcome = []

    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        message = yield from ctx.recv_message(sock)
        outcome.append(message)

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        yield from ctx.close(sock)

    b.spawn("srv", server)
    a.spawn("cli", client)
    cluster.run()
    assert outcome == [None]


def test_accept_blocks_until_connection(pair):
    cluster, a, b = pair
    accepted_at = []

    def server(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        accepted_at.append(ctx.now)

    def client(ctx):
        yield from ctx.sleep(2.0)
        yield from ctx.connect("b", 9000)

    b.spawn("srv", server)
    a.spawn("cli", client)
    cluster.run()
    assert accepted_at and accepted_at[0] >= 2.0


def test_duplicate_listen_rejected(pair):
    cluster, a, b = pair

    def server(ctx):
        yield from ctx.listen(9000)
        yield from ctx.listen(9000)

    b.spawn("srv", server)
    with pytest.raises(SimError, match="already listening"):
        cluster.run()


def test_byte_credits_fifo_and_overflow(sim):
    credits = ByteCredits(sim, 100)
    first = credits.acquire(80)
    second = credits.acquire(50)
    assert first.triggered and not second.triggered
    credits.release(40)
    assert second.triggered
    assert credits.in_flight == 90
    with pytest.raises(SimError):
        credits.acquire(101)
    with pytest.raises(SimError):
        credits.release(1000)


def test_socket_stats_counters(pair):
    cluster, a, b = pair
    sizes = []
    b.spawn("srv", _echo_server, 9000, sizes)
    stats = {}

    def client(ctx):
        sock = yield from ctx.connect("b", 9000)
        yield from ctx.send_message(sock, 5000)
        yield from ctx.recv_message(sock)
        stats["sent"] = sock.bytes_sent
        stats["received"] = sock.bytes_received
        yield from ctx.close(sock)

    a.spawn("cli", client)
    cluster.run()
    assert stats == {"sent": 5000, "received": 5000}
