"""Selector multiplexing and the /proc registry."""

import pytest

from repro.cluster import Cluster
from repro.ossim.procfs import ProcFs
from repro.ossim.selector import Selector


@pytest.fixture
def trio():
    cluster = Cluster(seed=8)
    return cluster, cluster.add_node("srv"), [
        cluster.add_node("c1"), cluster.add_node("c2")
    ]


def test_selector_multiplexes_two_clients(trio):
    cluster, server_node, clients = trio
    received = []

    def server(ctx):
        lsock = yield from ctx.listen(7000)
        selector = Selector(ctx)
        selector.add_listener("accept", lsock)
        done = 0
        while done < 2:
            key, item = yield from selector.select()
            if key == "accept":
                selector.add_socket(("conn", item.remote), item)
            elif item is None:
                selector.remove(key)
                done += 1
            else:
                received.append((item.meta["who"], item.size))

    def client(ctx, who):
        sock = yield from ctx.connect("srv", 7000)
        for index in range(3):
            yield from ctx.send_message(sock, 1000, meta={"who": who})
            yield from ctx.sleep(0.01)
        yield from ctx.close(sock)

    task = server_node.spawn("srv", server)
    for index, node in enumerate(clients):
        node.spawn("cli", client, "c{}".format(index + 1))
    cluster.run(until=5.0)
    assert task.proc.triggered
    assert sorted(who for who, _ in received) == ["c1", "c1", "c1", "c2", "c2", "c2"]


def test_selector_round_robin_fairness(trio):
    cluster, server_node, clients = trio
    order = []

    def server(ctx):
        lsock = yield from ctx.listen(7000)
        selector = Selector(ctx)
        selector.add_listener("accept", lsock)
        while len(order) < 6:
            key, item = yield from selector.select()
            if key == "accept":
                selector.add_socket(item.remote, item)
            elif item is not None:
                order.append(item.meta["who"])
                # Busy server: both clients' next messages arrive meanwhile.
                yield from ctx.compute(0.05)

    def client(ctx, who):
        sock = yield from ctx.connect("srv", 7000)
        for _ in range(3):
            yield from ctx.send_message(sock, 100, meta={"who": who})
            yield from ctx.sleep(0.001)

    server_node.spawn("srv", server)
    for index, node in enumerate(clients):
        node.spawn("cli", client, "c{}".format(index + 1))
    cluster.run(until=5.0)
    # Round-robin alternates once both have pending messages.
    assert order.count("c1") == 3 and order.count("c2") == 3
    assert order[2:] not in (["c1", "c1", "c2", "c2"],)


def test_selector_empty_rejected(trio):
    cluster, server_node, _clients = trio

    def server(ctx):
        selector = Selector(ctx)
        try:
            yield from selector.select()
        except ValueError:
            return "rejected"

    task = server_node.spawn("srv", server)
    cluster.run()
    assert task.exit_value == "rejected"


def test_procfs_register_read_list():
    procfs = ProcFs()
    procfs.register("/proc/foo", lambda: "hello")
    procfs.register("/proc/foo/bar", lambda: "nested")
    assert procfs.read("/proc/foo") == "hello"
    assert procfs.listdir("/proc/foo") == ["/proc/foo", "/proc/foo/bar"]
    assert procfs.exists("/proc/foo")
    procfs.unregister("/proc/foo")
    assert not procfs.exists("/proc/foo")


def test_procfs_rejects_bad_paths():
    procfs = ProcFs()
    with pytest.raises(ValueError):
        procfs.register("/etc/passwd", lambda: "nope")


def test_procfs_missing_path():
    procfs = ProcFs()
    with pytest.raises(FileNotFoundError):
        procfs.read("/proc/nothing")
