"""SMP nodes: parallel cores, affinity pinning, interrupt placement."""

import pytest

from repro.cluster import Cluster
from repro.ossim.cpu import CpuSet
from repro.ossim.task import BAND_IRQ
from repro.sim import SimError


def _node(cpus):
    return Cluster(seed=61).add_node("smp", cpus=cpus)


def _burner(ctx, seconds=0.2):
    yield from ctx.compute(seconds)
    return ctx.now


def test_two_cores_run_two_tasks_in_parallel():
    node = _node(2)
    a = node.spawn("a", _burner)
    b = node.spawn("b", _burner)
    node.sim.run()
    # Each task gets its own core: both finish in ~0.2 s, not 0.4 s.
    assert a.exit_value == pytest.approx(0.2, rel=0.05)
    assert b.exit_value == pytest.approx(0.2, rel=0.05)


def test_three_tasks_on_two_cores():
    node = _node(2)
    tasks = [node.spawn("t{}".format(i), _burner) for i in range(3)]
    node.sim.run()
    finish = sorted(task.exit_value for task in tasks)
    # 0.6 s of demand over 2 cores: last finisher around 0.3 s.
    assert finish[-1] == pytest.approx(0.3, rel=0.15)


def test_affinity_pins_to_one_core():
    node = _node(2)
    a = node.spawn("a", _burner, affinity=1)
    b = node.spawn("b", _burner, affinity=1)
    node.sim.run()
    # Sharing core 1: serialized to ~0.4 s; core 0 stays idle.
    assert max(a.exit_value, b.exit_value) == pytest.approx(0.4, rel=0.1)
    assert node.kernel.cpu.core(0).busy_time == 0.0
    assert node.kernel.cpu.core(1).busy_time == pytest.approx(0.4, rel=0.05)


def test_affinity_out_of_range_rejected():
    node = _node(2)
    with pytest.raises(SimError, match="affinity"):
        node.spawn("bad", _burner, affinity=5)


def test_irq_work_lands_on_core_zero():
    node = _node(2)
    done = node.kernel.cpu.submit(None, 0.01, "kernel", band=BAND_IRQ)
    node.sim.run_until_triggered(done)
    assert node.kernel.cpu.core(0).busy_time == pytest.approx(0.01)
    assert node.kernel.cpu.core(1).busy_time == 0.0


def test_aggregated_accounting():
    node = _node(2)
    node.spawn("a", _burner)
    node.spawn("b", _burner)
    node.sim.run()
    cpu = node.kernel.cpu
    assert cpu.busy_time == pytest.approx(0.4, rel=0.05)
    assert cpu.mode_time["user"] == pytest.approx(0.4, rel=0.05)
    assert cpu.utilization(node.sim.now) <= 1.0
    assert len(cpu) == 2


def test_cpuset_validates_count():
    node = _node(1)
    with pytest.raises(ValueError):
        CpuSet(node.sim, node.kernel, node.costs, 0)


def test_uniprocessor_default_unchanged():
    node = _node(1)
    assert node.kernel.cpu_count == 1
    assert not isinstance(node.kernel.cpu, CpuSet)


def test_networking_works_on_smp():
    cluster = Cluster(seed=62)
    a = cluster.add_node("a", cpus=2)
    b = cluster.add_node("b", cpus=2)
    got = []

    def server(ctx):
        lsock = yield from ctx.listen(7000)
        sock = yield from ctx.accept(lsock)
        message = yield from ctx.recv_message(sock)
        got.append(message.size)

    def client(ctx):
        sock = yield from ctx.connect("b", 7000)
        yield from ctx.send_message(sock, 5000)

    b.spawn("srv", server)
    a.spawn("cli", client)
    cluster.run(until=2.0)
    assert got == [5000]


def test_dedicated_monitoring_core_keeps_workload_core_cleaner():
    """Paper future-work: 'a core dedicated to the analysis'.  Pinning
    sysprofd to core 1 moves dissemination work off the workload core."""
    from repro.core import SysProf, SysProfConfig

    daemon_busy = {}
    for label, affinity in (("shared", None), ("dedicated", 1)):
        cluster = Cluster(seed=63)
        cluster.add_node("client")
        cluster.add_node("server", cpus=2)
        cluster.add_node("mgmt")
        sysprof = SysProf(
            cluster,
            SysProfConfig(eviction_interval=0.02, buffer_capacity=8,
                          daemon_affinity=affinity),
        )
        sysprof.install(monitored=["server"], gpa_node="mgmt")
        sysprof.start()

        def server(ctx):
            lsock = yield from ctx.listen(8080)
            sock = yield from ctx.accept(lsock)
            while True:
                message = yield from ctx.recv_message(sock)
                if message is None:
                    break
                yield from ctx.send_message(sock, 500, kind="reply")

        def client(ctx):
            sock = yield from ctx.connect("server", 8080)
            for _ in range(100):
                yield from ctx.send_message(sock, 800, kind="query")
                yield from ctx.recv_message(sock)
            yield from ctx.close(sock)

        # Pin the workload to core 0 so the comparison is clean.
        cluster.node("server").spawn("srv", server, affinity=0)
        cluster.node("client").spawn("cli", client)
        cluster.run(until=5.0)
        daemon_task = sysprof.monitor("server").daemon.task
        core1 = cluster.node("server").kernel.cpu.core(1)
        daemon_busy[label] = (daemon_task.cpu_time, core1.busy_time)

    shared_core1 = daemon_busy["shared"][1]
    dedicated_core1 = daemon_busy["dedicated"][1]
    # With the pin, the daemon's CPU time shows up on core 1.
    assert dedicated_core1 >= daemon_busy["dedicated"][0] * 0.9
    assert dedicated_core1 > shared_core1
