"""CPU scheduling: accounting, round-robin, priority preemption."""

import pytest

from repro.cluster import Cluster
from repro.ossim.task import BAND_IRQ, BAND_KERNEL, BAND_USER


@pytest.fixture
def node():
    cluster = Cluster(seed=1)
    return cluster.add_node("n1")


def test_single_compute_takes_exact_time(node):
    def worker(ctx):
        yield from ctx.compute(0.5)
        return ctx.now

    task = node.spawn("w", worker)
    node.sim.run()
    assert task.exit_value == pytest.approx(0.5, abs=1e-4)
    assert task.utime == pytest.approx(0.5)
    assert task.stime == 0.0


def test_kcompute_accounts_system_time(node):
    def worker(ctx):
        yield from ctx.kcompute(0.2)

    task = node.spawn("w", worker)
    node.sim.run()
    assert task.stime == pytest.approx(0.2)
    assert task.utime == 0.0


def test_two_tasks_share_cpu_round_robin(node):
    def worker(ctx):
        yield from ctx.compute(0.1)
        return ctx.now

    a = node.spawn("a", worker)
    b = node.spawn("b", worker)
    node.sim.run()
    # Both need 0.1s; sharing one CPU means both finish around 0.2s.
    assert a.exit_value == pytest.approx(0.2, rel=0.2)
    assert b.exit_value == pytest.approx(0.2, rel=0.2)
    assert abs(a.exit_value - b.exit_value) < 0.02


def test_round_robin_is_fair_for_many_tasks(node):
    finish = {}

    def worker(ctx, name):
        yield from ctx.compute(0.05)
        finish[name] = ctx.now

    for index in range(5):
        node.spawn("w{}".format(index), worker, index)
    node.sim.run()
    times = sorted(finish.values())
    assert times[-1] == pytest.approx(0.25, rel=0.1)
    # With a 10ms quantum nobody finishes before ~the fair-share point.
    assert times[0] > 0.2


def test_kernel_band_preempts_user(node):
    trace = []

    def user(ctx):
        yield from ctx.compute(0.1)
        trace.append(("user-done", ctx.now))

    def daemon(ctx):
        yield from ctx.sleep(0.02)
        yield from ctx.kcompute(0.05)
        trace.append(("daemon-done", ctx.now))

    node.spawn("user", user, band=BAND_USER)
    node.spawn("daemon", daemon, band=BAND_KERNEL)
    node.sim.run()
    order = [name for name, _ in trace]
    assert order == ["daemon-done", "user-done"]
    daemon_done = dict(trace)["daemon-done"]
    assert daemon_done == pytest.approx(0.07, abs=0.02)


def test_irq_work_preempts_everything(node):
    def user(ctx):
        yield from ctx.compute(0.1)
        return ctx.now

    task = node.spawn("user", user)
    node.sim.run(until=0.01)
    done = node.kernel.cpu.submit(None, 0.005, "kernel", band=BAND_IRQ)
    node.sim.run_until_triggered(done)
    start, end = done.value
    assert end - start == pytest.approx(0.005, abs=1e-6)
    node.sim.run()
    # The user task lost the CPU while the irq ran.
    assert task.exit_value == pytest.approx(0.105, abs=6e-3)


def test_context_switch_cost_charged(node):
    def worker(ctx):
        yield from ctx.compute(0.05)

    node.spawn("a", worker)
    node.spawn("b", worker)
    node.sim.run()
    cpu = node.kernel.cpu
    assert cpu.ctx_switch_count >= 2
    assert cpu.mode_time["ctx"] > 0
    assert cpu.mode_time["ctx"] == pytest.approx(
        cpu.ctx_switch_count * node.costs.context_switch, rel=0.01
    )


def test_cpu_busy_time_tracks_total_work(node):
    def worker(ctx):
        yield from ctx.compute(0.3)

    node.spawn("w", worker)
    node.sim.run()
    cpu = node.kernel.cpu
    assert cpu.busy_time == pytest.approx(0.3 + cpu.mode_time["ctx"])
    assert cpu.utilization(node.sim.now) <= 1.0


def test_zero_cost_submit_completes_immediately(node):
    done = node.kernel.cpu.submit(None, 0.0, "kernel", band=BAND_IRQ)
    assert done.triggered


def test_negative_demand_rejected(node):
    with pytest.raises(ValueError):
        node.kernel.cpu.submit(None, -1.0)


def test_run_queue_length(node):
    def worker(ctx):
        yield from ctx.compute(0.1)

    node.spawn("a", worker)
    node.spawn("b", worker)
    node.sim.run(until=0.05)
    assert node.kernel.cpu.run_queue_length >= 1
    node.sim.run()
    assert node.kernel.cpu.run_queue_length == 0
