"""NTP sync under contention and deadline pressure.

Regression targets: the old ``_ntpd`` served one connection at a time
(a second sync client waited for the first to hang up), and
``synchronize`` returned a partial :class:`ClockTable` silently when the
deadline expired.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.ntp import NTP_PORT, NtpSync, NtpSyncTimeout, synchronize


def _cluster(*names, seed=19):
    cluster = Cluster(seed=seed)
    for name in names:
        cluster.add_node(name)
    return cluster


def test_ntpd_serves_concurrent_clients():
    """A slow client holding its connection must not starve a second one."""
    cluster = _cluster("ref", "srv", "other")
    NtpSync(cluster, "ref").start_servers()  # ntpd on srv and other
    finished = {}

    def probe(ctx, label, start_delay, hold):
        if start_delay:
            yield from ctx.sleep(start_delay)
        sock = yield from ctx.connect("srv", NTP_PORT)
        yield from ctx.send_message(sock, 90, kind="ntp-request")
        reply = yield from ctx.recv_message(sock)
        assert reply is not None
        finished[label] = ctx.now
        if hold:
            yield from ctx.sleep(hold)  # keep the connection open
        yield from ctx.close(sock)

    cluster.node("ref").spawn("slow", probe, "slow", 0.0, 5.0)
    cluster.node("other").spawn("fast", probe, "fast", 0.01, 0.0)
    cluster.run(until=1.0)
    # With the old single-connection ntpd the fast client's exchange
    # would only complete after the slow client disconnects at t=5.
    assert "fast" in finished
    assert finished["fast"] < 0.5


def test_synchronize_complete_pass_is_not_partial():
    cluster = _cluster("ref", "a", "b")
    table = synchronize(cluster, "ref", rounds=2)
    assert table.partial is False
    assert table.missing == ()
    assert table.known("a") and table.known("b")


def test_synchronize_deadline_strict_raises_with_partial_table():
    cluster = _cluster("ref", "a", "b")
    with pytest.raises(NtpSyncTimeout) as excinfo:
        synchronize(cluster, "ref", rounds=4, deadline=0.001)
    table = excinfo.value.table
    assert table.partial is True
    assert table.missing  # at least one target unmeasured
    assert set(table.missing) <= {"a", "b"}
    for name in table.missing:
        assert not table.known(name)


def test_synchronize_deadline_nonstrict_warns_and_flags():
    cluster = _cluster("ref", "a", "b")
    with pytest.warns(UserWarning, match="ntp sync deadline"):
        table = synchronize(
            cluster, "ref", rounds=4, deadline=0.001, strict=False
        )
    assert table.partial is True
    assert table.missing
