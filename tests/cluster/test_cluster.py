"""Cluster assembly, clocks, and NTP synchronization."""

import pytest

from repro.cluster import Cluster, NodeClock, synchronize
from repro.cluster.clock import ClockTable


def test_add_node_assigns_ips():
    cluster = Cluster(seed=1)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    assert a.ip != b.ip
    assert cluster.node("a") is a
    assert cluster.node_for_ip(b.ip) is b


def test_duplicate_node_name_rejected():
    cluster = Cluster(seed=1)
    cluster.add_node("a")
    with pytest.raises(ValueError):
        cluster.add_node("a")


def test_resolve_by_name_and_ip():
    cluster = Cluster(seed=1)
    a = cluster.add_node("a")
    assert cluster.resolve("a") is a.kernel
    assert cluster.resolve(a.ip) is a.kernel
    with pytest.raises(KeyError):
        cluster.resolve("ghost")


def test_one_way_latency_under_point_three_ms():
    """Paper: network RTT is insignificant, < 0.3 ms."""
    cluster = Cluster(seed=1)
    assert 2.0 * cluster.one_way_latency() < 0.3e-3


def test_node_clock_roundtrip():
    clock = NodeClock(offset=0.5, drift=1e-4)
    local = clock.local_time(100.0)
    assert local == pytest.approx(100.0 * 1.0001 + 0.5)
    assert clock.sim_time(local) == pytest.approx(100.0)


def test_node_clock_drift_validation():
    with pytest.raises(ValueError):
        NodeClock(drift=-1.5)


def test_clock_table_translation():
    table = ClockTable("ref")
    table.set_offset("n1", 0.25)
    assert table.to_reference("n1", 10.25) == pytest.approx(10.0)
    assert table.to_reference("ref", 5.0) == 5.0
    assert table.known("n1") and not table.known("n2")


def test_ntp_recovers_static_offsets():
    cluster = Cluster(seed=5)
    cluster.add_node("mgmt")
    cluster.add_node("n1", clock=NodeClock(offset=0.25))
    cluster.add_node("n2", clock=NodeClock(offset=-0.125))
    table = synchronize(cluster, "mgmt")
    assert table.offset("n1") == pytest.approx(0.25, abs=1e-4)
    assert table.offset("n2") == pytest.approx(-0.125, abs=1e-4)


def test_ntp_accuracy_with_drift():
    cluster = Cluster(seed=5)
    cluster.add_node("mgmt")
    cluster.add_node("n1", clock=NodeClock(offset=0.1, drift=5e-6))
    table = synchronize(cluster, "mgmt")
    # Offset estimate good to well under the LAN RTT.
    assert table.offset("n1") == pytest.approx(0.1, abs=1e-3)


def test_local_time_uses_node_clock():
    cluster = Cluster(seed=5)
    node = cluster.add_node("n1", clock=NodeClock(offset=1.0))
    cluster.sim.run(until=2.0)
    assert node.local_time() == pytest.approx(3.0)
