"""Rack/spine-leaf builders: batched node construction and lookups."""

import pytest

from repro.cluster import Cluster, RackBuilder, build_spine_leaf


def test_rack_builder_stamps_nodes_behind_leaf():
    cluster = Cluster(seed=2)
    spec = RackBuilder(cluster, "ra").build(3)
    assert spec.nodes == ["ran0", "ran1", "ran2"]
    assert spec.gpa_node == "ragpa"
    assert spec.switch_name == "ra-leaf"
    leaf = cluster.fabric.switches["ra-leaf"]
    for name in spec.nodes + [spec.gpa_node]:
        assert cluster.fabric.switch_of(cluster.node(name).ip) is leaf


def test_add_nodes_matches_individual_adds():
    batched = Cluster(seed=7)
    batched.add_nodes(["a", "b", "c"])
    serial = Cluster(seed=7)
    for name in ("a", "b", "c"):
        serial.add_node(name)
    assert list(batched.nodes) == list(serial.nodes)
    for name in ("a", "b", "c"):
        assert batched.node(name).ip == serial.node(name).ip


def test_build_spine_leaf_shape_and_lookup():
    cluster = Cluster(seed=3)
    topology = build_spine_leaf(cluster, racks=3, nodes_per_rack=2)
    assert len(topology.racks) == 3
    assert len(topology.node_names) == 6
    assert topology.mgmt_node == "mgmt"
    assert cluster.topology is topology
    rack = topology.rack_of("r1n0")
    assert rack.name == "r1"
    assert topology.rack_of("r2gpa").name == "r2"
    with pytest.raises(KeyError):
        topology.rack_of("nope")
    stats = topology.stats()
    assert stats == {"racks": 3, "nodes": 6, "rack_gpas": 3, "switches": 4}


def test_build_spine_leaf_without_rack_gpas():
    cluster = Cluster(seed=3)
    topology = build_spine_leaf(
        cluster, racks=2, nodes_per_rack=2, with_rack_gpa=False, mgmt_node=""
    )
    assert topology.mgmt_node == ""
    assert all(not rack.gpa_node for rack in topology.racks)
    assert topology.stats()["rack_gpas"] == 0
