"""Resource-geometry calibration sweeps (`python -m repro calibrate`).

The cheap resources run for real here (socket buffer, Kprof buffer,
link serialization — each point is milliseconds); the expensive CPU
sweeps are covered by ``benchmarks/test_bench_calibration.py`` and the
CI smoke job.  The determinism contract — a ``--jobs N`` run is
digest-identical to a serial one — is asserted on the fast subset.
"""

import pytest

from repro.experiments.calibrate import (
    RESOURCES,
    _measure_kprof_buffer,
    _measure_link_serialization,
    _measure_socket_buffer,
    format_report,
    run_calibration,
)

#: Sub-second sweeps, safe to run wholesale in tier-1 tests.
FAST = ("socket_buffer", "kprof_buffer", "link_serialization")


class TestRegistry:
    def test_six_modeled_resources(self):
        assert set(RESOURCES) == {
            "socket_buffer", "kprof_buffer", "daemon_drain",
            "link_serialization", "disk_seek", "rx_frame_cpu",
        }

    @pytest.mark.parametrize("name", sorted(RESOURCES))
    def test_grids_are_sorted_positive_and_bracket_configured(self, name):
        spec = RESOURCES[name]
        for smoke in (False, True):
            grid = spec.grid(smoke)
            assert len(grid) >= 4
            assert grid == sorted(grid)
            assert all(x > 0 for x in grid)
        # Smoke trades points for speed, never the other way around.
        assert len(spec.grid(True)) <= len(spec.grid(False))

    @pytest.mark.parametrize("name", sorted(RESOURCES))
    def test_tolerances_are_stated_and_sane(self, name):
        spec = RESOURCES[name]
        assert 0.0 < spec.tolerance <= 0.25
        assert spec.configured() > 0
        assert spec.note


class TestMicroWorkloads:
    def test_kprof_burst_loss_staircase_is_exact(self):
        # Two 256-record buffers absorb 512 appends; the 512th append's
        # switch overwrites the first undrained buffer.
        assert _measure_kprof_buffer(448, seed=1, smoke=True) == 0.0
        assert _measure_kprof_buffer(511, seed=1, smoke=True) == 0.0
        assert _measure_kprof_buffer(512, seed=1, smoke=True) == 256.0
        assert _measure_kprof_buffer(640, seed=1, smoke=True) == 256.0
        assert _measure_kprof_buffer(768, seed=1, smoke=True) == 512.0

    def test_socket_flood_parks_at_most_the_buffer(self):
        accepted = _measure_socket_buffer(3 * 262144, seed=2, smoke=True)
        assert abs(accepted - 262144) <= 1448  # credit granularity
        below = _measure_socket_buffer(131072, seed=2, smoke=True)
        assert below == 131072.0

    def test_link_delivers_offered_load_below_capacity(self):
        offered = 50e6
        delivered = _measure_link_serialization(offered, seed=3, smoke=True)
        assert delivered == pytest.approx(offered, rel=0.01)

    def test_link_saturates_at_configured_bandwidth(self):
        delivered = _measure_link_serialization(200e6, seed=3, smoke=True)
        assert delivered == pytest.approx(100e6, rel=0.01)


class TestSuite:
    @pytest.fixture(scope="class")
    def report(self):
        return run_calibration(seed=23, smoke=True, resources=FAST)

    def test_fast_resources_pass_their_geometry_check(self, report):
        assert report.total == len(FAST)
        for result in report.resources:
            assert result.knee is not None, result.name
            assert result.passed, (result.name, result.rel_error)

    def test_parallel_run_is_digest_identical(self, report):
        parallel = run_calibration(seed=23, smoke=True, resources=FAST, jobs=2)
        assert parallel.digest == report.digest

    def test_different_seed_still_converges(self):
        # The knee positions are properties of the modeled geometry, not
        # of any particular seed.
        other = run_calibration(seed=99, smoke=True, resources=("kprof_buffer",))
        assert other.resources[0].passed

    def test_payload_shape(self, report):
        payload = report.payload()
        assert payload["seed"] == 23
        assert payload["smoke"] is True
        assert len(payload["digest"]) == 64
        assert payload["passes"] == payload["total"] == len(FAST)
        for name in FAST:
            entry = payload["resources"][name]
            assert entry["curve"] and entry["knee"] is not None
            assert entry["tolerance"] > 0
            assert entry["passed"] is True
            assert entry["inferred"] == pytest.approx(
                entry["configured"], rel=entry["tolerance"]
            )

    def test_resource_lookup(self, report):
        assert report.resource("kprof_buffer").unit == "records"
        with pytest.raises(KeyError):
            report.resource("warp_core")

    def test_unknown_resource_rejected(self):
        with pytest.raises(KeyError):
            run_calibration(smoke=True, resources=("warp_core",))

    def test_format_report_mentions_every_resource(self, report):
        text = format_report(report)
        for name in FAST:
            assert name in text
        assert "digest:" in text
        assert "3/3 within tolerance" in text
