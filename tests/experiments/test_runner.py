"""The parallel sweep runner: ordering, determinism, seed derivation."""

import time

from repro.experiments import available_jobs, derive_seed, run_points


def _square(x):
    return x * x


def _slow_inverse(args):
    """Sleep longer for earlier points so completion order inverts."""
    index, total = args
    time.sleep(0.02 * (total - index))
    return index


def test_serial_path_runs_in_process():
    calls = []
    assert run_points(calls.append, [1, 2, 3], jobs=1) == [None, None, None]
    assert calls == [1, 2, 3]  # closures are fine when jobs == 1


def test_parallel_matches_serial():
    points = list(range(8))
    assert run_points(_square, points, jobs=4) == run_points(
        _square, points, jobs=1
    )


def test_results_come_back_in_submission_order():
    points = [(index, 4) for index in range(4)]
    assert run_points(_slow_inverse, points, jobs=4) == [0, 1, 2, 3]


def test_single_point_short_circuits():
    # Even with jobs > 1 a single point must not pay for a pool.
    calls = []
    run_points(calls.append, ["only"], jobs=8)
    assert calls == ["only"]


def test_jobs_none_means_all_cpus():
    assert available_jobs() >= 1
    assert run_points(_square, [2, 3], jobs=None) == [4, 9]


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(42, ("nfs", 4)) == derive_seed(42, ("nfs", 4))
    seeds = {derive_seed(42, ("nfs", threads)) for threads in (1, 2, 4, 8, 16)}
    assert len(seeds) == 5
    assert derive_seed(42, "a") != derive_seed(43, "a")
    assert all(0 <= seed < 2**31 - 1 for seed in seeds)
