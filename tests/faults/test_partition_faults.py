"""parent_partition faults: uplink retention and member reparenting."""

import pytest

from repro.faults import FaultInjector, FaultSchedule
from repro.faults.schedule import ScheduleError
from tests.core.test_federation import build_federated


def test_parent_partition_scope_validated():
    schedule = FaultSchedule().parent_partition(1.0, "r0", scope="gpa")
    schedule.validate()
    with pytest.raises(ScheduleError):
        FaultSchedule().parent_partition(1.0, "r0", scope="bogus")
    with pytest.raises(ScheduleError):
        FaultSchedule().add(1.0, "parent_partition")  # zone target required


def test_parent_partition_window_scripts_both_sides():
    schedule = FaultSchedule().parent_partition_window(1.0, 2.0, "r0")
    kinds = [e.kind for e in schedule.events()]
    assert kinds == ["parent_partition", "heal"]
    assert schedule.events()[0].params["scope"] == "uplink"
    # Round-trips through the pure-data serialization.
    clone = FaultSchedule.from_dict(schedule.to_dict())
    assert [e.kind for e in clone.events()] == kinds


def test_uplink_partition_retains_rollups_until_heal():
    """Cut the whole r0 subtree off from the root: members keep feeding
    their zone GPA, upward forwards fail, and the retention path holds
    every condensation window until the fabric heals — conservation of
    class-summary counts proves zero rows lost."""
    cluster, sysprof = build_federated()
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(
        FaultSchedule().parent_partition_window(1.0, 2.0, "r0", scope="uplink")
    )
    cluster.run(until=2.5)
    zone = sysprof.federation.zone("r0")
    # Mid-partition: ingest continues, upward delivery does not.
    assert zone.forward_failures > 0
    assert zone._pending_classes
    link = zone.parent_link
    assert link.stats()["failed_over"] == 1
    assert link.events[0]["event"] == "probe-only"
    cluster.run(until=6.0)
    # Healed: the link returned and the backlog drained to the root.
    assert link.state == "primary"
    assert link.returns == 1
    member_total = sum(r["count"] for r in zone.class_summaries)
    root_total = sum(
        r["count"] for r in sysprof.gpa.class_summaries
        if r["node"] == "zone:r0"
    )
    pending = sum(acc["count"] for acc in zone._pending_classes.values())
    assert root_total + pending == member_total
    assert "zone:r0" not in sysprof.gpa.stale_nodes(cluster.sim.now)


def test_gpa_partition_reparents_members_to_standby():
    """Isolate r0's GPA node: members lose their parent, fail over to
    the standby zone r1, and return once the fabric heals — with the
    adoption ledger tracking (and then releasing) them."""
    cluster, sysprof = build_federated(standbys=True)
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(
        FaultSchedule().parent_partition_window(1.0, 2.0, "r0", scope="gpa")
    )
    cluster.run(until=2.5)
    federation = sysprof.federation
    assert federation.adopted == {"r0n0": "r1", "r0n1": "r1"}
    assert federation.adopted_members("r1") == ["r0n0", "r0n1"]
    standby = federation.zone("r1")
    # The standby tier really holds the adoptees' telemetry.
    assert "r0n0" in standby.node_stats
    assert "r0n0" in standby._member_last
    for member in ("r0n0", "r0n1"):
        daemon = sysprof.monitor(member).daemon
        assert daemon.channel_prefix == "sysprof@r1/"
        assert daemon.stats()["parent_link"]["failed_over"] == 1
    cluster.run(until=6.0)
    # Healed: everyone is back on the primary and the ledger is clean.
    assert federation.adopted == {}
    for member in ("r0n0", "r0n1"):
        daemon = sysprof.monitor(member).daemon
        assert daemon.channel_prefix == "sysprof@r0/"
        assert daemon.stats()["parent_link"]["returns"] == 1
    # The standby released the adoptees: no ghost staleness or inflated
    # heartbeat sums linger in r1.
    assert "r0n0" not in standby.node_stats
    assert "r0n0" not in standby._member_last
    assert set(standby._member_last) == {"r1n0", "r1n1"}
    assert not sysprof.gpa.stale_nodes(cluster.sim.now)


def test_gpa_partition_without_standby_escalates_to_root():
    """No standby configured: orphaned members escalate straight to the
    root prefix, and the root sees their raw rows while they are away."""
    cluster, sysprof = build_federated()
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(
        FaultSchedule().parent_partition_window(1.0, 2.0, "r0", scope="gpa")
    )
    cluster.run(until=2.5)
    federation = sysprof.federation
    assert federation.root_adopted() == ["r0n0", "r0n1"]
    assert "r0n0" in sysprof.gpa.node_stats
    assert sysprof.monitor("r0n0").daemon.channel_prefix == "sysprof/"
    cluster.run(until=6.0)
    assert federation.adopted == {}
    assert sysprof.monitor("r0n0").daemon.channel_prefix == "sysprof@r0/"
    # The root released the returned members — their direct streams must
    # not rot into permanent staleness at the top of the tree.
    assert not sysprof.gpa.stale_nodes(cluster.sim.now)


def test_reparented_stream_does_not_corrupt_sibling_decode():
    """Regression for the shared-decoder bug: a reparented daemon's
    format descriptors land on the root alongside a zone uplink's, and
    each stream's ids must stay private to its connection."""
    cluster, sysprof = build_federated()
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(
        FaultSchedule().parent_partition_window(1.0, 2.0, "r0", scope="gpa")
    )
    cluster.run(until=6.0)
    assert sysprof.gpa.decode_errors == 0
    # The surviving zone's rollups kept landing throughout.
    assert "zone:r1" not in sysprof.gpa.stale_nodes(cluster.sim.now)
