"""Fault schedules: builders, validation, ordering, serialization."""

import pytest

from repro.faults import FaultSchedule, ScheduleError


def test_builders_chain_and_order():
    schedule = (
        FaultSchedule()
        .kill_daemon(2.0, "b")
        .restart_daemon(5.0, "b")
        .link_outage(1.0, 0.5, "a")
    )
    kinds = [(event.at, event.kind) for event in schedule.events()]
    assert kinds == [
        (1.0, "link_down"),
        (1.5, "link_up"),
        (2.0, "daemon_kill"),
        (5.0, "daemon_restart"),
    ]
    assert len(schedule) == 4


def test_same_time_events_keep_authoring_order():
    schedule = FaultSchedule().kill_gpa(1.0).kill_daemon(1.0, "a")
    assert [event.kind for event in schedule.events()] == [
        "gpa_kill", "daemon_kill",
    ]


def test_outage_helpers_pair_down_and_up():
    schedule = FaultSchedule().daemon_outage(3.0, 2.0, "node")
    events = schedule.events()
    assert events[0].kind == "daemon_kill" and events[0].at == 3.0
    assert events[1].kind == "daemon_restart" and events[1].at == 5.0

    schedule = FaultSchedule().partition_window(1.0, 4.0, [["a"], ["b"]])
    events = schedule.events()
    assert events[0].kind == "partition"
    assert events[0].params["groups"] == [["a"], ["b"]]
    assert events[1].kind == "heal" and events[1].at == 5.0


def test_validation_rejects_bad_entries():
    with pytest.raises(ScheduleError):
        FaultSchedule().add(1.0, "meteor_strike")
    with pytest.raises(ScheduleError):
        FaultSchedule().add(-1.0, "heal")
    with pytest.raises(ScheduleError):
        FaultSchedule().add(1.0, "daemon_kill")  # no target
    with pytest.raises(ScheduleError):
        FaultSchedule().partition(1.0, [["a"], []])  # empty group
    with pytest.raises(ScheduleError):
        FaultSchedule().kill_gpa(1.0, jitter=-0.1)


def test_dict_round_trip():
    schedule = (
        FaultSchedule()
        .daemon_outage(2.0, 3.0, "b", jitter=0.25)
        .partition_window(1.0, 2.0, [["a"], ["b", "c"]])
    )
    clone = FaultSchedule.from_dict(schedule.to_dict())
    assert clone.to_dict() == schedule.to_dict()
    originals = schedule.events()
    restored = clone.events()
    assert [e.kind for e in restored] == [e.kind for e in originals]
    assert [e.at for e in restored] == [e.at for e in originals]
    assert [e.jitter for e in restored] == [e.jitter for e in originals]


def test_from_dict_validates():
    with pytest.raises(ScheduleError):
        FaultSchedule.from_dict({"events": [{"at": 1.0, "kind": "nope"}]})
