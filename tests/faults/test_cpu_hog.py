"""The cpu_hog fault: schedule validation and injected CPU contention."""

import pytest

from repro.cluster import Cluster
from repro.faults import FaultInjector, FaultSchedule
from repro.faults.schedule import ScheduleError


def test_cpu_hog_schedule_validation():
    with pytest.raises(ScheduleError, match="duration"):
        FaultSchedule().cpu_hog(1.0, "a", 0.0)
    with pytest.raises(ScheduleError, match="utilization"):
        FaultSchedule().cpu_hog(1.0, "a", 1.0, utilization=0.0)
    with pytest.raises(ScheduleError, match="utilization"):
        FaultSchedule().cpu_hog(1.0, "a", 1.0, utilization=1.5)
    with pytest.raises(ScheduleError, match="target"):
        FaultSchedule().add(1.0, "cpu_hog", params={"duration": 1.0})


def test_cpu_hog_schedule_roundtrip():
    schedule = FaultSchedule().cpu_hog(
        2.0, "backend1", 1.5, utilization=0.5, band="user"
    )
    rebuilt = FaultSchedule.from_dict(schedule.to_dict())
    event = rebuilt.events()[0]
    assert event.kind == "cpu_hog"
    assert event.target == "backend1"
    assert event.params == {
        "duration": 1.5, "utilization": 0.5, "band": "user"
    }


def _hog_run(utilization, band="kernel", duration=1.0):
    cluster = Cluster(seed=21)
    cluster.add_node("a")
    cluster.add_node("b")
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule().cpu_hog(
        0.5, "a", duration, utilization=utilization, band=band,
    ))
    cluster.run(until=3.0)
    return cluster, injector


@pytest.mark.parametrize("utilization", [1.0, 0.5])
def test_cpu_hog_burns_requested_share(utilization):
    cluster, injector = _hog_run(utilization)
    busy = cluster.node("a").kernel.cpu.busy_time
    assert busy == pytest.approx(1.0 * utilization, rel=0.05)
    assert cluster.node("b").kernel.cpu.busy_time == 0.0
    assert injector.summary() == {"cpu_hog": 1}
    assert injector.hogs_spawned == 1
    assert injector.log[0]["at"] == pytest.approx(0.5)
    assert injector.stats() == {"fired": 1, "hogs_spawned": 1, "injected": 0}


def test_cpu_hog_user_band_burns_user_mode():
    cluster, _ = _hog_run(1.0, band="user")
    cpu = cluster.node("a").kernel.cpu
    assert cpu.busy_time == pytest.approx(1.0, rel=0.05)


def test_cpu_hog_registers_fault_stats_with_sysprof():
    from repro.core import SysProf, SysProfConfig

    cluster = Cluster(seed=21)
    cluster.add_node("a")
    cluster.add_node("mgmt")
    sysprof = SysProf(cluster, SysProfConfig())
    sysprof.install(monitored=["a"], gpa_node="mgmt")
    sysprof.start()
    injector = FaultInjector(cluster, sysprof=sysprof)
    assert "sysprof.faults" in sysprof.metrics.source_prefixes()
    injector.arm(FaultSchedule().cpu_hog(0.2, "a", 0.3))
    cluster.run(until=1.0)
    collected = sysprof.metrics.collect()
    assert collected["sysprof.faults.fired"][1] == 1
    assert collected["sysprof.faults.hogs_spawned"][1] == 1
