"""The injector against live clusters: links, partitions, crashes."""

import pytest

from repro.cluster import Cluster
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.errors import ConnectionReset, SimError
from tests.core.helpers import echo_server


def _pair():
    cluster = Cluster(seed=21)
    cluster.add_node("a")
    cluster.add_node("b")
    return cluster


def test_link_outage_window_controls_reachability():
    cluster = _pair()
    cluster.add_node("c")
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule().link_outage(0.5, 1.0, "b"))
    a_ip, b_ip, c_ip = (cluster.node(n).ip for n in "abc")
    seen = {}

    def probe(label):
        seen[label] = (
            cluster.fabric.reachable(a_ip, b_ip),
            cluster.fabric.reachable(a_ip, c_ip),
        )

    cluster.sim.schedule(0.75, probe, "down")
    cluster.sim.schedule(2.0, probe, "up")
    cluster.run(until=3.0)
    assert seen["down"] == (False, True)  # only b's port is dark
    assert seen["up"] == (True, True)
    assert injector.summary() == {"link_down": 1, "link_up": 1}


def test_partition_cuts_connections_and_heals():
    cluster = _pair()
    cluster.add_node("mgmt")  # unmapped: keeps sight of both sides
    cluster.node("b").spawn("srv", echo_server)

    outcomes = {}

    def client(ctx):
        sock = yield from ctx.connect("b", 8080)
        for index in range(50):
            try:
                yield from ctx.send_message(sock, 2000, kind="query")
            except ConnectionReset:
                outcomes["reset_at"] = ctx.now
                return "cut"
            reply = yield from ctx.recv_message(sock)
            if reply is None:
                outcomes["reset_at"] = ctx.now
                return "cut"
            yield from ctx.sleep(0.05)
        return "finished"

    task = cluster.node("a").spawn("cli", client)
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule().partition_window(0.5, 1.0, [["a"], ["b"]]))
    a_ip, b_ip, m_ip = (cluster.node(n).ip for n in ("a", "b", "mgmt"))
    mid = {}
    cluster.sim.schedule(
        0.75,
        lambda: mid.update(
            ab=cluster.fabric.reachable(a_ip, b_ip),
            am=cluster.fabric.reachable(a_ip, m_ip),
            bm=cluster.fabric.reachable(b_ip, m_ip),
        ),
    )
    cluster.run(until=3.0)
    # The established connection was aborted when the partition landed.
    assert task.exit_value == "cut"
    assert 0.5 <= outcomes["reset_at"] < 1.0
    # Unmapped mgmt saw both halves throughout.
    assert mid == {"ab": False, "am": True, "bm": True}
    assert cluster.fabric.reachable(a_ip, b_ip)  # healed


def test_node_crash_kills_tasks_and_resets_peers():
    cluster = _pair()
    cluster.node("b").spawn("srv", echo_server)

    def client(ctx):
        sock = yield from ctx.connect("b", 8080)
        yield from ctx.send_message(sock, 1000, kind="query")
        yield from ctx.recv_message(sock)
        while True:
            reply = yield from ctx.recv_message(sock)
            if reply is None:
                return "peer-died"

    task = cluster.node("a").spawn("cli", client)
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule().crash_node(0.5, "b"))
    cluster.run(until=2.0)
    assert task.exit_value == "peer-died"
    assert all(
        t.state == "exited" for t in cluster.node("b").kernel.tasks.values()
    )
    assert cluster.node("b").kernel._sockets == {}


def test_connect_into_partition_fails_after_handshake_wait():
    cluster = _pair()
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule().partition(0.0, [["a"], ["b"]]))

    def dialer(ctx):
        try:
            yield from ctx.connect("b", 8080)
        except SimError as error:
            return str(error)
        return "connected"

    task = cluster.node("a").spawn("dial", dialer)
    cluster.run(until=1.0)
    assert "no route to host" in task.exit_value


def test_arm_twice_and_past_events_rejected():
    cluster = _pair()
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule())
    with pytest.raises(SimError):
        injector.arm(FaultSchedule())
    cluster.run(until=1.0)
    with pytest.raises(SimError):
        FaultInjector(cluster).arm(FaultSchedule().heal(0.5))


def test_daemon_fault_without_sysprof_is_an_error():
    cluster = _pair()
    injector = FaultInjector(cluster)
    injector.arm(FaultSchedule().kill_daemon(0.1, "b"))
    with pytest.raises(SimError):
        cluster.run(until=1.0)


def test_jittered_times_are_seed_deterministic():
    def fire_times(seed):
        cluster = Cluster(seed=seed)
        cluster.add_node("a")
        cluster.add_node("b")
        injector = FaultInjector(cluster)
        injector.arm(
            FaultSchedule().link_outage(0.5, 1.0, "b", jitter=0.3)
        )
        cluster.run(until=3.0)
        return [entry["at"] for entry in injector.log]

    first, second = fire_times(33), fire_times(33)
    assert first == second
    assert first != [0.5, 1.5]  # jitter actually moved the events
    assert fire_times(34) != first  # and is seed-dependent


def test_inject_registers_events_mid_run_relative_to_now():
    cluster = Cluster(seed=7)
    cluster.add_node("a")
    cluster.add_node("b")
    injector = FaultInjector(cluster)
    cluster.run(until=1.0)
    # arm() is a one-shot; inject() is the live control plane and may be
    # called repeatedly, offsets relative to the current time.
    registered = injector.inject(
        FaultSchedule().cpu_hog(0.25, "a", 0.2, utilization=1.0)
    )
    assert registered == [
        {"kind": "cpu_hog", "target": "a", "at": pytest.approx(1.25)}
    ]
    injector.inject(FaultSchedule().cpu_hog(0.75, "b", 0.2))
    cluster.run(until=3.0)
    assert [entry["at"] for entry in injector.log] == [
        pytest.approx(1.25), pytest.approx(1.75)
    ]
    assert injector.summary() == {"cpu_hog": 2}
    assert injector.injected == 2
    assert injector.stats()["injected"] == 2


def test_inject_rejects_events_in_the_past():
    cluster = Cluster(seed=7)
    cluster.add_node("a")
    injector = FaultInjector(cluster)
    cluster.run(until=1.0)
    with pytest.raises(SimError, match="past"):
        injector.inject(FaultSchedule().cpu_hog(0.5, "a", 0.2), base=0.0)
