"""Zone-GPA fault kinds: schedule wiring and end-to-end injection."""

import pytest

from repro.faults import FaultInjector, FaultSchedule, ScheduleError
from repro.sim import SimError
from tests.core.test_federation import build_federated


def test_zone_builders_and_roundtrip():
    schedule = (
        FaultSchedule()
        .kill_zone_gpa(2.0, "r0")
        .restart_zone_gpa(4.0, "r0")
        .zone_outage(6.0, 1.5, "r1", jitter=0.1)
    )
    kinds = [(event.at, event.kind, event.target) for event in schedule.events()]
    assert kinds == [
        (2.0, "zone_gpa_kill", "r0"),
        (4.0, "zone_gpa_restart", "r0"),
        (6.0, "zone_gpa_kill", "r1"),
        (7.5, "zone_gpa_restart", "r1"),
    ]
    clone = FaultSchedule.from_dict(schedule.to_dict())
    assert clone.to_dict() == schedule.to_dict()


def test_zone_kinds_require_target():
    with pytest.raises(ScheduleError):
        FaultSchedule().add(1.0, "zone_gpa_kill")
    with pytest.raises(ScheduleError):
        FaultSchedule().add(1.0, "zone_gpa_restart")


def test_zone_fault_without_federation_is_an_error():
    from repro.cluster import Cluster
    from repro.core import SysProf, SysProfConfig

    cluster = Cluster(seed=4)
    cluster.add_node("a")
    cluster.add_node("mgmt")
    sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["a"], gpa_node="mgmt")
    sysprof.start()
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(FaultSchedule().kill_zone_gpa(0.5, "r0"))
    with pytest.raises(SimError):
        cluster.run(until=1.0)


def test_unknown_zone_is_an_error():
    cluster, sysprof = build_federated()
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(FaultSchedule().kill_zone_gpa(0.5, "nosuchzone"))
    with pytest.raises(SimError):
        cluster.run(until=1.0)


def test_zone_outage_degrades_then_recovers():
    cluster, sysprof = build_federated()
    injector = FaultInjector(cluster, sysprof=sysprof)
    injector.arm(FaultSchedule().zone_outage(1.5, 1.5, "r0"))
    cluster.run(until=2.8)
    # Mid-outage: only the killed zone is stale at the root.
    assert set(sysprof.gpa.stale_nodes(cluster.sim.now)) == {"zone:r0"}
    cluster.run(until=6.0)
    # Post-restart: the zone caught up and the root is whole again.
    assert not sysprof.gpa.stale_nodes(cluster.sim.now)
    assert sysprof.federation.zone("r0").restarts == 1
    assert injector.stats()["fired"] == 2
