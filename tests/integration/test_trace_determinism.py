"""Trace-hash determinism across the fast lane and the parallel runner.

The hard constraint on every engine optimization: same seed => byte
identical GPA traces.  These tests hash the full interaction trace of
the NFS and RUBiS experiments and require the hash to survive (a) a
re-run, (b) disabling the same-time fast lane, (c) fanning the sweep
out over worker processes, (d) switching between frame and per-record
dissemination (both charge identical simulated CPU and ship byte-equal
record images, so monitoring timing cannot diverge), (e) swapping the
calendar-queue event store for the binary-heap oracle (identical
``(time, priority, seq)`` dispatch order by construction), and
(f) removing numpy, which disables the vectorized frame-decode kernel
(``frombuffer`` reinterprets the same bytes the struct path unpacks, so
the decoded rows are bit-identical either way).
"""

import dataclasses

import pytest

from repro.core import encoding

from repro.experiments import run_points
from repro.experiments.nfs_storage import (
    NfsExperimentConfig,
    _sweep_point,
    run_nfs_experiment,
    run_thread_sweep,
)
from repro.experiments.rubis_qos import (
    RubisExperimentConfig,
    run_rubis_experiment,
)
from repro.sim import engine as engine_mod

NFS_CONFIG = NfsExperimentConfig(
    thread_counts=(1, 2), ops_per_thread=6, rewrite=False, sim_limit=200.0
)

RUBIS_CONFIG = RubisExperimentConfig(
    duration=5.0, load_at=2.5, rate_per_class=80.0, sessions_per_class=8,
    slots_per_servlet=8,
)


@pytest.fixture(scope="module")
def nfs_baseline():
    return [
        run_nfs_experiment(threads, NFS_CONFIG).trace_hash
        for threads in NFS_CONFIG.thread_counts
    ]


def test_nfs_trace_hash_repeatable(nfs_baseline):
    again = run_nfs_experiment(1, NFS_CONFIG).trace_hash
    assert again == nfs_baseline[0]
    assert all(nfs_baseline)  # non-empty hashes


def test_nfs_trace_hash_identical_without_fast_lane(nfs_baseline, monkeypatch):
    monkeypatch.setattr(engine_mod, "DEFAULT_FAST_LANE", False)
    slow = run_nfs_experiment(1, NFS_CONFIG).trace_hash
    assert slow == nfs_baseline[0]


def test_nfs_trace_hash_identical_per_record_mode(nfs_baseline):
    per_record = dataclasses.replace(NFS_CONFIG, frame_dissemination=False)
    assert run_nfs_experiment(1, per_record).trace_hash == nfs_baseline[0]


def test_nfs_trace_hash_identical_with_heap_store(nfs_baseline, monkeypatch):
    monkeypatch.setattr(engine_mod, "DEFAULT_EVENT_STORE", "heap")
    heap = run_nfs_experiment(1, NFS_CONFIG).trace_hash
    assert heap == nfs_baseline[0]


def test_nfs_trace_hash_identical_heap_no_fast_lane(nfs_baseline, monkeypatch):
    """The full pre-optimization engine: heap store and no lanes."""
    monkeypatch.setattr(engine_mod, "DEFAULT_EVENT_STORE", "heap")
    monkeypatch.setattr(engine_mod, "DEFAULT_FAST_LANE", False)
    oracle = run_nfs_experiment(1, NFS_CONFIG).trace_hash
    assert oracle == nfs_baseline[0]


def test_nfs_trace_hash_identical_without_numpy(nfs_baseline, monkeypatch):
    """Pure-Python frame decode must reproduce the numpy kernel's trace."""
    monkeypatch.setattr(encoding, "_np", None)
    pure = run_nfs_experiment(1, NFS_CONFIG).trace_hash
    assert pure == nfs_baseline[0]


def test_nfs_trace_hash_identical_under_jobs(nfs_baseline):
    parallel = run_thread_sweep(NFS_CONFIG, jobs=4)
    assert [result.trace_hash for result in parallel] == nfs_baseline


def test_nfs_worker_entry_point_matches_direct_call(nfs_baseline):
    assert _sweep_point((2, NFS_CONFIG)).trace_hash == nfs_baseline[1]


@pytest.fixture(scope="module")
def rubis_baseline():
    return run_rubis_experiment("dwcs", RUBIS_CONFIG).trace_hash


def test_rubis_trace_hash_repeatable(rubis_baseline):
    assert rubis_baseline
    again = run_rubis_experiment("dwcs", RUBIS_CONFIG).trace_hash
    assert again == rubis_baseline


def test_rubis_trace_hash_identical_without_fast_lane(rubis_baseline, monkeypatch):
    monkeypatch.setattr(engine_mod, "DEFAULT_FAST_LANE", False)
    slow = run_rubis_experiment("dwcs", RUBIS_CONFIG).trace_hash
    assert slow == rubis_baseline


def test_rubis_trace_hash_identical_with_heap_store(rubis_baseline, monkeypatch):
    monkeypatch.setattr(engine_mod, "DEFAULT_EVENT_STORE", "heap")
    heap = run_rubis_experiment("dwcs", RUBIS_CONFIG).trace_hash
    assert heap == rubis_baseline


def test_rubis_trace_hash_identical_without_numpy(rubis_baseline, monkeypatch):
    monkeypatch.setattr(encoding, "_np", None)
    pure = run_rubis_experiment("dwcs", RUBIS_CONFIG).trace_hash
    assert pure == rubis_baseline


def test_rubis_trace_hash_identical_per_record_mode(rubis_baseline):
    per_record = dataclasses.replace(RUBIS_CONFIG, frame_dissemination=False)
    assert run_rubis_experiment("dwcs", per_record).trace_hash == rubis_baseline


def test_rubis_trace_hash_identical_under_jobs(rubis_baseline):
    from repro.experiments.rubis_qos import _comparison_point

    parallel = run_points(
        _comparison_point,
        [("dwcs", RUBIS_CONFIG, True), ("radwcs", RUBIS_CONFIG, True)],
        jobs=2,
    )
    assert parallel[0].trace_hash == rubis_baseline
    # The radwcs run is a different schedule; its trace must differ.
    assert parallel[1].trace_hash != rubis_baseline
