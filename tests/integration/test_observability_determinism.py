"""Observability purity: ledger + tracer must not perturb the simulation.

The hard invariant the whole layer is built around: ledger charging and
span recording are host-side bookkeeping that consume no simulated CPU,
schedule no events, and read no random streams — so the same seed
produces a byte-identical GPA trace hash with observability on or off.
"""

from repro.experiments.nfs_storage import NfsExperimentConfig, run_nfs_experiment
from repro.observability import ledger as cpu_ledger
from repro.observability import tracer as span_tracer

_SMOKE = NfsExperimentConfig(ops_per_thread=6, clients=1, backends=1)


def _run(observed):
    if observed:
        cpu_ledger.install()
        span_tracer.install()
    try:
        return run_nfs_experiment(2, _SMOKE)
    finally:
        span_tracer.uninstall()
        cpu_ledger.uninstall()


def test_same_seed_hash_identical_with_observability_on():
    plain = _run(observed=False)
    observed = _run(observed=True)
    assert plain.trace_hash == observed.trace_hash
    assert plain.rpc_count == observed.rpc_count
    assert plain.proxy_kernel_ms == observed.proxy_kernel_ms
    assert plain.client_mean_latency_ms == observed.client_mean_latency_ms


def test_ledger_and_tracer_populated_during_observed_run():
    ledger = cpu_ledger.install()
    tracer = span_tracer.install()
    try:
        run_nfs_experiment(2, _SMOKE)
        assert "proxy" in ledger.nodes()
        assert ledger.monitoring_time("proxy") > 0.0
        assert len(tracer) > 0
    finally:
        span_tracer.uninstall()
        cpu_ledger.uninstall()
