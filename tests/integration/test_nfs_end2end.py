"""Small-scale end-to-end checks of the §3.2 storage experiment shapes."""

import pytest

from repro.analysis import find_bottleneck
from repro.experiments import NfsExperimentConfig, run_nfs_experiment

CONFIG = NfsExperimentConfig(
    thread_counts=(1, 4), ops_per_thread=10, rewrite=False, sim_limit=200.0
)


@pytest.fixture(scope="module")
def sweep():
    return {
        threads: run_nfs_experiment(threads, CONFIG) for threads in (1, 4)
    }


def test_all_rpcs_complete(sweep):
    for threads, result in sweep.items():
        expected = CONFIG.clients * threads * (10 + 1) + CONFIG.clients * threads * 1
        # writes + lookup + at least one commit per thread
        assert result.rpc_count >= CONFIG.clients * threads * 11


def test_proxy_user_time_flat(sweep):
    """Figure 4: user-level time per interaction ~constant across load."""
    low, high = sweep[1].proxy_user_ms, sweep[4].proxy_user_ms
    assert high == pytest.approx(low, rel=0.5)
    assert low < 0.2


def test_backend_kernel_dominates_proxy(sweep):
    """Figure 5: the back-end server is the major latency contributor."""
    for result in sweep.values():
        assert result.backend_kernel_ms > result.proxy_kernel_ms
    assert sweep[4].backend_to_proxy_ratio > 3.0


def test_backend_has_no_user_time(sweep):
    """nfsd is a kernel daemon: zero user-level time at the back-end."""
    for result in sweep.values():
        assert result.backend_user_ms == pytest.approx(0.0, abs=1e-6)


def test_backend_time_grows_with_threads(sweep):
    assert sweep[4].backend_kernel_ms > 1.5 * sweep[1].backend_kernel_ms


def test_network_rtt_insignificant(sweep):
    """Paper: round-trip delay < 0.3 ms, insignificant vs the back-end."""
    result = sweep[4]
    assert result.network_rtt_ms < 0.3
    assert result.network_rtt_ms < result.backend_kernel_ms / 5


def test_causal_paths_correlated(sweep):
    """The GPA nests backend interactions inside proxy interactions even
    with skewed node clocks (NTP-corrected)."""
    for result in sweep.values():
        assert result.causal_paths > 0


def test_bottleneck_analysis_names_backend():
    result_config = NfsExperimentConfig(
        thread_counts=(2,), ops_per_thread=8, rewrite=False, sim_limit=200.0
    )
    # Re-run once, keeping the sysprof handle via the module internals.
    from repro.apps.nfs.service import VirtualStorageService
    from repro.cluster import synchronize
    from repro.core import SysProf, SysProfConfig
    from repro.experiments.nfs_storage import build_cluster
    from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone

    cluster = build_cluster(result_config)
    table = synchronize(cluster, "mgmt")
    VirtualStorageService(
        cluster, "proxy", ["backend1", "backend2"],
        proxy_parse_cost=result_config.proxy_parse_cost,
        proxy_reply_cost=result_config.proxy_reply_cost,
    ).start()
    sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.2), clock_table=table)
    sysprof.install(
        monitored=["proxy", "backend1", "backend2"], gpa_node="mgmt"
    )
    sysprof.start()
    results = IozoneResults()
    config = IozoneConfig(threads=2, ops_per_thread=8, rewrite=False,
                          pipeline=2, stable=False, commit_every=8)
    for name in ("client1", "client2"):
        spawn_iozone(cluster.node(name), "proxy", config, results)
    cluster.run(until=200.0)
    sysprof.flush()
    report = find_bottleneck(sysprof.gpa, ["proxy", "backend1", "backend2"])
    assert report.bottleneck in ("backend1", "backend2")
