"""Acceptance: scripted outages end-to-end through the failures experiment.

These are the PR's acceptance criteria in executable form: a scripted
daemon crash is detected by ``gpa.stale_nodes()`` while it lasts, the
daemon reconnects afterwards with backoff-paced (not per-publish) dials,
and two same-seed/same-schedule runs are bit-identical.
"""

from dataclasses import replace

import pytest

from repro.experiments import FailureExperimentConfig, run_failure_experiment

# One shared, shortened config: the stock 30s run is benchmark-sized.
_BASE = FailureExperimentConfig(
    fault_start=3.0,
    fault_duration=3.0,
    ops_per_thread=24,
    sim_limit=14.0,
)


@pytest.fixture(scope="module")
def daemon_crash_result():
    return run_failure_experiment(replace(_BASE, scenario="daemon-crash"))


@pytest.fixture(scope="module")
def partition_result():
    return run_failure_experiment(replace(_BASE, scenario="partition"))


def test_daemon_crash_is_detected_and_recovers(daemon_crash_result):
    result = daemon_crash_result
    assert result.detected
    # stale_nodes() can only flag the node after stale_threshold of
    # silence, quantized to the probe grid.
    floor = _BASE.stale_threshold
    ceiling = floor + 4 * _BASE.check_interval + _BASE.eviction_interval
    assert floor <= result.detection_latency <= ceiling
    assert result.recovered
    assert 0.0 <= result.recovery_latency <= 2.0
    assert result.reconnects >= 1
    assert result.endpoints_abandoned == 0
    assert result.injected == {"daemon_kill": 1, "daemon_restart": 1}


def test_partition_outage_backoff_bounds_dials(partition_result):
    result = partition_result
    assert result.detected and result.recovered
    # The daemon saw the peer vanish mid-publish, then retried on the
    # backoff schedule: skips (closed windows) outnumber actual dials.
    assert result.send_errors >= 1
    assert result.reconnects >= 1
    assert result.backoff_skips > result.connect_attempts
    # ~15 eviction wakeups happen during the 3s outage; without pacing
    # each would dial.  The exponential schedule keeps it to a handful.
    wakeups_during_outage = _BASE.fault_duration / _BASE.eviction_interval
    assert result.connect_attempts < wakeups_during_outage
    assert result.endpoints_abandoned == 0
    assert result.injected == {"partition": 1, "heal": 1}


def test_records_flow_again_after_recovery(daemon_crash_result):
    assert daemon_crash_result.records_received > 0
    assert daemon_crash_result.trace_hash


@pytest.mark.parametrize("scenario", ["daemon-crash", "partition"])
def test_same_seed_same_schedule_runs_are_identical(scenario):
    config = replace(_BASE, scenario=scenario, fault_jitter=0.4)
    first = run_failure_experiment(config)
    second = run_failure_experiment(config)
    assert first == second  # dataclass equality: every field, trace hash too
    assert first.fault_at != _BASE.fault_start  # jitter actually applied


def test_seed_changes_move_the_jittered_fault():
    config = replace(_BASE, scenario="daemon-crash", fault_jitter=0.4)
    first = run_failure_experiment(config)
    other = run_failure_experiment(replace(config, seed=config.seed + 1))
    assert first.fault_at != other.fault_at
