"""Federation end-to-end: determinism vs flat, and two-tier blame."""

from repro.cluster import Cluster, build_spine_leaf
from repro.core import SysProf, SysProfConfig, ZoneSpec
from repro.experiments.common import trace_digest
from repro.observability import DiagnosisEngine
from repro.workloads.iozone import IozoneConfig, IozoneResults, spawn_iozone
from repro.workloads.synthetic import install_synthetic_load

MONITORED = ["r0n0", "r0n1", "r1n0"]  # proxy + two backends


def _run_nfs(federated, seed=31):
    """One NFS run over an identical spine/leaf topology.

    The zone GPA hosts sit on the spine in *both* modes (idle when flat)
    so member->subscriber path latency is identical either way — the
    monitored daemons see the same ack timing, which is what makes the
    traces byte-comparable.
    """
    cluster = Cluster(seed=seed)
    build_spine_leaf(
        cluster, racks=2, nodes_per_rack=2, with_rack_gpa=False,
        mgmt_node="mgmt", with_disk=True,
    )
    for host in ("z0", "z1"):
        cluster.add_node(host)  # spine-attached, like mgmt

    from repro.apps.nfs.service import VirtualStorageService

    VirtualStorageService(cluster, "r0n0", ["r0n1", "r1n0"]).start()

    sysprof = SysProf(
        cluster,
        SysProfConfig(eviction_interval=0.2, latency_sketches=True,
                      forward_interval=0.4),
    )
    if federated:
        sysprof.install(
            zones=[
                ZoneSpec(name="z0", gpa_node="z0",
                         members=["r0n0", "r0n1"]),
                ZoneSpec(name="z1", gpa_node="z1", members=["r1n0"]),
            ],
            gpa_node="mgmt",
        )
    else:
        sysprof.install(monitored=list(MONITORED), gpa_node="mgmt")
    sysprof.start()

    results = IozoneResults()
    spawn_iozone(
        cluster.node("r1n1"), "r0n0",
        IozoneConfig(threads=2, ops_per_thread=120), results,
    )
    cluster.run(until=5.0)
    sysprof.flush()

    if federated:
        records = []
        for zone in sysprof.federation.all_zones():
            records.extend(zone.store.query_interactions())
    else:
        records = sysprof.gpa.query_interactions()
    records.sort(
        key=lambda r: (r["node"], r["start_ts"], r["interaction_id"])
    )
    return trace_digest(records), results, len(records)


def test_flat_and_federated_traces_hash_identical():
    """Same seed, same topology, same workload: interposing zone GPAs
    must not perturb the monitored system.  The interaction records the
    plane captures (flat: at the root; federated: across zone stores)
    hash byte-identical."""
    flat_digest, flat_results, flat_count = _run_nfs(federated=False)
    fed_digest, fed_results, fed_count = _run_nfs(federated=True)
    assert flat_count > 0
    assert flat_count == fed_count
    assert flat_results.count == fed_results.count
    assert flat_results.operations == fed_results.operations
    assert flat_digest == fed_digest


def test_federated_runs_are_seed_deterministic():
    first, _, _ = _run_nfs(federated=True)
    second, _, _ = _run_nfs(federated=True)
    assert first == second


def _build_hot_member_cluster(hot_node="r1n0", standbys=False):
    cluster = Cluster(seed=41)
    topology = build_spine_leaf(
        cluster, racks=2, nodes_per_rack=2, mgmt_node="mgmt"
    )
    sysprof = SysProf(
        cluster,
        SysProfConfig(eviction_interval=0.1, forward_interval=0.25,
                      latency_sketches=False),
    )
    specs = [
        ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                 members=list(rack.nodes))
        for rack in topology.racks
    ]
    if standbys:
        for index, spec in enumerate(specs):
            spec.standby = specs[(index + 1) % len(specs)].name
    sysprof.install(zones=specs, gpa_node="mgmt")
    install_synthetic_load(
        sysprof, samples_per_window=16, hot_nodes=[hot_node], hot_factor=8.0
    )
    return cluster, sysprof, hot_node


def test_blame_descends_two_tiers_to_the_hot_member():
    """The SLO fires at the root on zone-merged sketches; blame walks
    the federation tree — zone pseudo-node first, then the member whose
    class summaries (held two tiers below the root) are slow."""
    cluster, sysprof, hot_node = _build_hot_member_cluster()
    engine = DiagnosisEngine(
        sysprof, rules=["p95(rpc) < 6ms"],
        lookback=1.0, eval_interval=0.2,
    )
    sysprof.start()
    cluster.run(until=4.0)
    alert = next(a for a in engine.alerts)
    blame = alert.blame
    assert blame["path"] == ["zone:r1"]
    assert blame["node"] == hot_node
    assert blame["stage"] in ("kernel-wait", "kernel-cpu", "user")
    # The root never saw the member directly — only its zone.
    assert hot_node not in sysprof.gpa.node_stats
    assert "zone:r1" in sysprof.gpa.node_stats


def test_blame_follows_hot_member_through_standby_after_zone_kill():
    """Tentpole e2e: the hot member's zone GPA dies mid-incident.  Its
    members reparent to the standby zone, whose rollups keep the SLO
    violation visible at the root — and blame descent walks the rewired
    path (standby pseudo-node, then the *adopted* hot member)."""
    cluster, sysprof, hot_node = _build_hot_member_cluster(standbys=True)
    engine = DiagnosisEngine(
        sysprof, rules=["p95(rpc) < 6ms"],
        lookback=1.0, eval_interval=0.2,
    )
    sysprof.start()
    cluster.run(until=1.5)
    sysprof.federation.zone("r1").kill("test")
    cluster.run(until=4.0)
    federation = sysprof.federation
    # The orphaned members were adopted by the standby zone r0.
    assert federation.adopted == {"r1n0": "r0", "r1n1": "r0"}
    assert hot_node in federation.zone("r0").node_stats
    blame = engine.blame(engine.rules[0], cluster.sim.now)
    assert blame["path"] == ["zone:r0"]
    assert blame["node"] == hot_node
    assert blame["stage"] in ("kernel-wait", "kernel-cpu", "user")
    # The violation itself is still live at the root via the standby.
    assert engine.active
