"""Failure injection: lossy links, dead analyzers, overloaded daemons."""


from repro.cluster import Cluster
from repro.core import SysProfConfig
from repro.netsim import Address, Packet
from tests.core.helpers import build_monitored_pair, drive_traffic, echo_server


def test_lossy_fabric_drops_frames():
    """The netsim layer injects loss; the message transport documents a
    reliable-LAN assumption, so this is exercised at the packet level."""
    cluster = Cluster(seed=51, loss_rate=0.3)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    received = []
    b.kernel.nic.rx_handler = lambda packet: received.append(packet)
    for index in range(100):
        a.kernel.nic.try_enqueue(
            Packet(Address(a.ip, 1), Address(b.ip, 2), 1000)
        )
    cluster.run(until=1.0)
    assert 20 < len(received) < 80  # ~0.49 survival through two lossy hops


def test_monitoring_survives_overload_by_shedding_records():
    """Tiny buffers + a slow daemon: records are lost, never corrupted."""
    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(eviction_interval=5.0, buffer_capacity=4)
    )
    drive_traffic(cluster, sysprof, count=40, run_until=10.0)
    buffer = sysprof.lpa("server").buffer
    assert buffer.records_appended == 40
    # Whatever was published decodes cleanly.
    assert sysprof.gpa.decode_errors == 0
    received = len(sysprof.gpa.query_interactions(node="server"))
    assert received + buffer.records_lost + buffer.active_length >= 36


def test_gpa_ignores_garbage_payloads():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=3)

    def attacker(ctx):
        sock = yield from ctx.connect("mgmt", 9100)
        yield from ctx.send_message(
            sock, 64, kind="sysprof-data", meta={"blob": b"\xde\xad\xbe\xef" * 16}
        )
        yield from ctx.close(sock)

    cluster.node("client").spawn("attacker", attacker)
    cluster.run(until=cluster.sim.now + 1.0)
    assert sysprof.gpa.decode_errors >= 1
    # Legitimate records are still intact.
    assert len(sysprof.gpa.query_interactions(node="server")) == 3


def test_server_crash_mid_run_leaves_partial_records():
    cluster, sysprof = build_monitored_pair()
    server_node = cluster.node("server")
    server_task = server_node.spawn("srv", echo_server)

    def client(ctx):
        sock = yield from ctx.connect("server", 8080)
        for index in range(20):
            yield from ctx.send_message(sock, 5000, kind="query")
            reply = yield from ctx.recv_message(sock)
            if reply is None:
                return "server-gone"
            yield from ctx.sleep(0.01)
        return "all-fine"

    client_task = cluster.node("client").spawn("cli", client)
    cluster.sim.schedule(0.055, server_task.kill, "crash")
    cluster.run(until=2.0)
    sysprof.flush()
    records = sysprof.gpa.query_interactions(node="server")
    assert 1 <= len(records) < 20
    assert client_task.is_alive or client_task.exit_value in (
        "server-gone", "all-fine",
    )


def test_unmonitored_node_traffic_invisible():
    cluster, sysprof = build_monitored_pair()
    # client <-> mgmt traffic is not monitored (only 'server' is).
    def mgmt_server(ctx):
        lsock = yield from ctx.listen(8500)
        sock = yield from ctx.accept(lsock)
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            yield from ctx.send_message(sock, 100, kind="pong")

    def client(ctx):
        sock = yield from ctx.connect("mgmt", 8500)
        yield from ctx.send_message(sock, 100, kind="ping")
        yield from ctx.recv_message(sock)
        yield from ctx.close(sock)

    cluster.node("mgmt").spawn("msrv", mgmt_server)
    cluster.node("client").spawn("cli", client)
    cluster.run(until=2.0)
    sysprof.flush()
    assert sysprof.gpa.query_interactions(request_class="ping") == []
