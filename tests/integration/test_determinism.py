"""Reproducibility: identical seeds produce identical traces."""

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from tests.core.helpers import build_monitored_pair, drive_traffic


def _run_once(seed):
    cluster, sysprof = build_monitored_pair(seed=seed)
    drive_traffic(cluster, sysprof, count=8)
    records = sysprof.gpa.query_interactions(node="server")
    return [
        (r["interaction_id"] - records[0]["interaction_id"],
         round(r["start_ts"], 12), round(r["end_ts"], 12),
         r["req_bytes"], round(r["user_time"], 12), round(r["kernel_wait"], 12))
        for r in records
    ], cluster.sim.now


def test_same_seed_identical_interaction_trace():
    first, now_first = _run_once(seed=77)
    second, now_second = _run_once(seed=77)
    assert first == second
    assert now_first == now_second


def test_different_seed_changes_nothing_deterministic_here():
    """This workload has no randomness, so even seeds agree — the stronger
    check is that adding an *unrelated* RNG consumer changes nothing."""
    baseline, _ = _run_once(seed=77)
    cluster, sysprof = build_monitored_pair(seed=77)
    cluster.streams.stream("unrelated-consumer").random()
    drive_traffic(cluster, sysprof, count=8)
    records = sysprof.gpa.query_interactions(node="server")
    trace = [
        (r["interaction_id"] - records[0]["interaction_id"],
         round(r["start_ts"], 12), round(r["end_ts"], 12),
         r["req_bytes"], round(r["user_time"], 12), round(r["kernel_wait"], 12))
        for r in records
    ]
    assert trace == baseline


def test_monitoring_does_not_change_workload_results():
    """Monitor-on vs monitor-off: same messages, same app-level outcomes
    (timing shifts by the perturbation, which is the paper's point)."""
    outcomes = {}
    for monitored in (False, True):
        cluster = Cluster(seed=88)
        cluster.add_node("client")
        cluster.add_node("server")
        cluster.add_node("mgmt")
        if monitored:
            sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.05))
            sysprof.install(monitored=["server"], gpa_node="mgmt")
            sysprof.start()
        replies = []

        def server(ctx):
            lsock = yield from ctx.listen(8080)
            sock = yield from ctx.accept(lsock)
            while True:
                message = yield from ctx.recv_message(sock)
                if message is None:
                    break
                yield from ctx.compute(0.001)
                yield from ctx.send_message(sock, 2000, kind="reply")

        def client(ctx):
            sock = yield from ctx.connect("server", 8080)
            for index in range(6):
                yield from ctx.send_message(sock, 4000, meta={"n": index})
                reply = yield from ctx.recv_message(sock)
                replies.append(reply.size)
            yield from ctx.close(sock)

        cluster.node("server").spawn("srv", server)
        cluster.node("client").spawn("cli", client)
        cluster.run(until=5.0)
        outcomes[monitored] = list(replies)
    assert outcomes[False] == outcomes[True] == [2000] * 6
