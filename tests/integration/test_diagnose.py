"""The online diagnosis closed loop, end to end, plus its purity bounds.

Three contracts from the diagnosis design:

* the smoke-sized hog incident is detected online, blamed on the hogged
  node, drilled into, and fully unwound after resolution;
* an *installed* engine whose rules never fire is pure host-side
  analysis — same-seed trace hashes are byte-identical with the engine
  attached or absent (sketches enabled in both runs);
* sketch rows that crossed the real frame wire reproduce the exact
  percentiles of the shipped interaction stream within the sketch's
  2% relative-error budget.
"""

import math

import pytest

from repro.core import SysProfConfig
from repro.experiments.common import trace_digest
from repro.experiments.diagnose import run_diagnose_experiment, smoke_config
from repro.observability import DiagnosisEngine
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_smoke_incident_closed_loop():
    result = run_diagnose_experiment(smoke_config())
    assert result.detected
    assert 0.0 < result.detection_latency < 2.0
    assert result.blame_correct
    assert result.blamed_node == "backend1"
    assert result.blamed_stage.startswith("kernel")
    assert result.drilled and result.drill_restored
    assert result.interval_during == pytest.approx(result.interval_before / 4)
    assert result.resolved
    assert result.alerts_fired == 1
    assert result.sketch_rows > 0
    assert result.monitoring_share_overall > 0.0
    assert "[FIRING]" in result.dashboard
    assert result.trace_hash


def _sketched_run(with_engine):
    config = SysProfConfig(eviction_interval=0.05, latency_sketches=True)
    cluster, sysprof = build_monitored_pair(config=config)
    if with_engine:
        DiagnosisEngine(sysprof, rules=["p99(query) < 999999s"])
    drive_traffic(cluster, sysprof, count=40)
    assert sysprof.gpa.sketches.rows_ingested > 0
    return trace_digest(sysprof.gpa.query_interactions()), sysprof


def test_idle_engine_preserves_trace_hash():
    plain, _ = _sketched_run(with_engine=False)
    plain_again, _ = _sketched_run(with_engine=False)
    engined, sysprof = _sketched_run(with_engine=True)
    assert plain == plain_again  # the baseline itself is deterministic
    assert plain == engined
    engine = sysprof.gpa.diagnosis
    assert engine.evaluations > 0  # it really ran, it just never fired
    assert engine.alerts == []


def test_wire_sketch_matches_exact_percentiles():
    config = SysProfConfig(eviction_interval=0.05, latency_sketches=True)
    cluster, sysprof = build_monitored_pair(config=config)
    drive_traffic(cluster, sysprof, count=120, run_until=4.0)
    records = [
        record for record in sysprof.gpa.query_interactions(node="server")
        if record["request_class"] == "query"
    ]
    assert len(records) >= 100
    latencies = sorted(record["total_latency"] for record in records)
    sketch = sysprof.gpa.sketches.merged(
        request_class="query", metric="latency", node="server"
    )
    assert sketch.count == len(latencies)
    for q in (0.5, 0.9, 0.99):
        exact = latencies[math.ceil(q * (len(latencies) - 1))]
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) / exact <= 0.02, "q={}".format(q)
