"""Failure detection from telemetry staleness at the GPA."""


from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from tests.core.helpers import echo_server, request_client


def _two_servers():
    cluster = Cluster(seed=83)
    cluster.add_node("client")
    cluster.add_node("server1")
    cluster.add_node("server2")
    cluster.add_node("mgmt")
    sysprof = SysProf(cluster, SysProfConfig(eviction_interval=0.1))
    sysprof.install(monitored=["server1", "server2"], gpa_node="mgmt")
    sysprof.start()
    for name in ("server1", "server2"):
        cluster.node(name).spawn("srv", echo_server)
    for name in ("server1", "server2"):
        cluster.node("client").spawn(
            "cli-{}".format(name), request_client, name, 8080, 30, 4000, 0.05
        )
    return cluster, sysprof


def test_healthy_nodes_not_suspected():
    cluster, sysprof = _two_servers()
    cluster.run(until=2.0)
    suspects = sysprof.gpa.stale_nodes(now_ref=cluster.sim.now, threshold=0.5)
    assert suspects == {}


def test_dead_daemon_is_suspected():
    cluster, sysprof = _two_servers()
    cluster.run(until=1.0)
    # server1's dissemination daemon dies (wedged node).
    daemon_task = sysprof.monitor("server1").daemon.task
    daemon_task.kill("node-wedged")
    cluster.run(until=3.0)
    suspects = sysprof.gpa.stale_nodes(now_ref=cluster.sim.now, threshold=0.5)
    assert "server1" in suspects
    assert "server2" not in suspects
    assert suspects["server1"] > 0.5


def test_kprof_procfs_export():
    cluster, sysprof = _two_servers()
    cluster.run(until=1.0)
    text = cluster.node("server1").kernel.procfs.read("/proc/sysprof/kprof")
    assert "kprof node=server1" in text
    assert "fired sock.enqueue=" in text
