"""Small-scale end-to-end checks of the §3.3 RUBiS/DWCS experiment shapes.

The full Figure 6/7 regeneration lives in benchmarks/; these runs use a
shorter horizon and lower rates to stay fast while still showing the
qualitative behaviour.
"""

import pytest

from repro.experiments import RubisExperimentConfig, run_rubis_experiment

FAST = RubisExperimentConfig(
    duration=8.0, load_at=4.0, rate_per_class=120.0, sessions_per_class=10,
    slots_per_servlet=8, load_duty=0.75,
)


@pytest.fixture(scope="module")
def runs():
    return {
        "dwcs": run_rubis_experiment("dwcs", FAST),
        "radwcs": run_rubis_experiment("radwcs", FAST),
    }


def test_preload_throughput_near_offered(runs):
    for result in runs.values():
        for name, rate in result.pre_throughput.items():
            assert rate == pytest.approx(120.0, rel=0.2), (result.scheduler, name)


def test_dwcs_degrades_under_load(runs):
    dwcs = runs["dwcs"]
    assert dwcs.post_total < 0.9 * dwcs.pre_total


def test_radwcs_degrades_far_less(runs):
    """Figure 7 vs 6: 'The degradation in throughput is far less'."""
    dwcs, radwcs = runs["dwcs"], runs["radwcs"]
    dwcs_loss = dwcs.pre_total - dwcs.post_total
    radwcs_loss = radwcs.pre_total - radwcs.post_total
    assert radwcs_loss < 0.5 * dwcs_loss


def test_bidding_drop_insignificant_with_radwcs(runs):
    radwcs = runs["radwcs"]
    pre = radwcs.pre_throughput["bidding"]
    post = radwcs.post_throughput["bidding"]
    assert post > 0.9 * pre


def test_throughput_gain_exceeds_paper_threshold(runs):
    """Headline: '>14%' post-load throughput gain from SysProf-guided
    scheduling."""
    dwcs, radwcs = runs["dwcs"], runs["radwcs"]
    gain = 100.0 * (radwcs.post_total - dwcs.post_total) / dwcs.post_total
    assert gain > 14.0


def test_radwcs_routes_bidding_away_from_loaded_server(runs):
    split = runs["radwcs"].servlet_split["bidding"]
    assert split.get("servlet2", 0) > split.get("servlet1", 0)


def test_series_cover_both_classes(runs):
    for result in runs.values():
        assert set(result.series) == {"bidding", "comment"}
        for points in result.series.values():
            assert len(points) >= 6


def test_scheduler_argument_validated():
    with pytest.raises(ValueError):
        run_rubis_experiment("edf", FAST)


def test_radwcs_requires_monitoring():
    config = RubisExperimentConfig(
        duration=2.0, load_at=1.0, rate_per_class=10.0, sessions_per_class=2,
        monitor=False,
    )
    with pytest.raises(ValueError, match="requires monitoring"):
        run_rubis_experiment("radwcs", config)
