"""Every package under ``src/repro`` documents itself against the paper.

Each ``__init__.py`` must open with a real docstring whose first
paragraph is substantial (not a bare title line) and which anchors the
package to the paper with at least one section reference ("§2",
"§3.1", ...), so a reader can always get from code back to the claim it
reproduces.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

PACKAGES = sorted(SRC.rglob("__init__.py"))


def _docstring(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return ast.get_docstring(tree)


def _package_id(path):
    return str(path.parent.relative_to(SRC.parent)).replace("/", ".")


def test_package_inventory_is_nonempty():
    assert len(PACKAGES) >= 15


@pytest.mark.parametrize("path", PACKAGES, ids=_package_id)
def test_package_docstring_is_a_paragraph_with_paper_anchor(path):
    doc = _docstring(path)
    assert doc, "missing module docstring"
    assert "§" in doc, "no paper-section anchor (§N) in docstring"
    first_paragraph = doc.strip().split("\n\n")[0]
    words = first_paragraph.split()
    assert len(words) >= 20, (
        "first paragraph is a bare title ({} words); write a real "
        "paragraph".format(len(words))
    )
