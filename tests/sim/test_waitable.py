"""Waitable semantics: one-shot triggering, callbacks, composites."""

import pytest

from repro.sim import SimError, StaleWaitable


def test_succeed_delivers_value_to_callbacks(sim):
    waitable = sim.waitable()
    seen = []
    waitable.add_callback(lambda w: seen.append(w.value))
    waitable.succeed(42)
    sim.run()
    assert seen == [42]


def test_callback_added_after_trigger_fires(sim):
    waitable = sim.waitable()
    waitable.succeed("early")
    seen = []
    waitable.add_callback(lambda w: seen.append(w.value))
    sim.run()
    assert seen == ["early"]


def test_double_trigger_rejected(sim):
    waitable = sim.waitable()
    waitable.succeed(1)
    with pytest.raises(StaleWaitable):
        waitable.succeed(2)


def test_fail_requires_exception(sim):
    waitable = sim.waitable()
    with pytest.raises(TypeError):
        waitable.fail("not an exception")


def test_unwaited_failure_raises(sim):
    waitable = sim.waitable()
    with pytest.raises(ValueError):
        waitable.fail(ValueError("boom"))


def test_defused_failure_is_silent(sim):
    waitable = sim.waitable().defuse()
    waitable.fail(ValueError("boom"))
    sim.run()
    assert waitable.triggered and not waitable.ok


def test_discard_callback(sim):
    waitable = sim.waitable()
    seen = []
    callback = lambda w: seen.append(w.value)  # noqa: E731
    waitable.add_callback(callback)
    waitable.discard_callback(callback)
    waitable.succeed(1)
    sim.run()
    assert seen == []


def test_timeout_negative_delay_rejected(sim):
    with pytest.raises(SimError):
        sim.timeout(-1)


def test_any_of_first_wins(sim):
    slow = sim.timeout(5.0, value="slow")
    fast = sim.timeout(1.0, value="fast")
    combined = sim.any_of([slow, fast])
    sim.run(until=2.0)
    assert combined.triggered
    assert combined.value is fast


def test_any_of_empty_rejected(sim):
    with pytest.raises(SimError):
        sim.any_of([])


def test_all_of_collects_values_in_order(sim):
    a = sim.timeout(2.0, value="a")
    b = sim.timeout(1.0, value="b")
    combined = sim.all_of([a, b])
    sim.run()
    assert combined.value == ["a", "b"]


def test_all_of_empty_succeeds_immediately(sim):
    combined = sim.all_of([])
    sim.run()
    assert combined.triggered
    assert combined.value == []


def test_all_of_propagates_failure(sim):
    good = sim.timeout(1.0)
    bad = sim.waitable()
    combined = sim.all_of([good, bad])
    errors = []
    combined.add_callback(lambda w: errors.append(w.value))
    bad.fail(RuntimeError("nope"))
    sim.run()
    assert isinstance(errors[0], RuntimeError)
