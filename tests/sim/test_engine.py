"""Event loop semantics: ordering, priorities, cancellation, run bounds."""

import pytest

from repro.sim import (
    PRIORITY_INTERRUPT,
    PRIORITY_LOW,
    SimError,
)


def test_schedule_runs_at_absolute_offset(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_insertion_order(sim):
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_priority_breaks_time_ties(sim):
    order = []
    sim.schedule(1.0, order.append, "low", priority=PRIORITY_LOW)
    sim.schedule(1.0, order.append, "normal")
    sim.schedule(1.0, order.append, "irq", priority=PRIORITY_INTERRUPT)
    sim.run()
    assert order == ["irq", "normal", "low"]


def test_cancel_prevents_callback(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent(sim):
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_negative_delay_rejected(sim):
    with pytest.raises(SimError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_stops_clock_exactly(sim):
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run(until=20.0)
    assert sim.now == 20.0


def test_run_until_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.run(until=0.5)


def test_step_processes_single_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_peek_skips_cancelled(sim):
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek() == 2.0


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, fired.append, "later"))
    sim.run()
    assert fired == ["later"]
    assert sim.now == 5.0


def test_call_soon_runs_at_current_time(sim):
    times = []
    sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_nested_scheduling_from_callbacks(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 2.0


def test_reentrant_run_rejected(sim):
    def nested():
        with pytest.raises(SimError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_run_until_triggered_returns_value(sim):
    waitable = sim.timeout(3.0, value="done")
    assert sim.run_until_triggered(waitable) == "done"
    assert sim.now == 3.0


def test_run_until_triggered_raises_on_drained_heap(sim):
    waitable = sim.waitable()
    with pytest.raises(SimError):
        sim.run_until_triggered(waitable)
