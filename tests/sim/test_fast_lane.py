"""Fast-lane dispatcher: ordering equivalence, pooling, lazy purge, clamp.

The engine keeps two interchangeable dispatch paths — the same-time FIFO
lanes and the pure binary heap (``Simulator(fast_lane=False)``).  These
tests pin down that the two orders are *identical*, plus the supporting
machinery: entry-list pooling, lazy purge of cancelled entries, and the
``schedule_at`` float-drift clamp.
"""

import random

import pytest

from repro.sim import (
    PRIORITY_INTERRUPT,
    PRIORITY_LOW,
    SimError,
    Simulator,
    Waitable,
)
from repro.sim import engine as engine_mod


def _random_workload(sim, order, seed):
    """Schedule a randomized mix of timers, call_soons, cancels, chains."""
    rng = random.Random(seed)

    def note(tag):
        order.append((tag, sim.now))

    def chain(tag, depth):
        note(tag)
        if depth > 0:
            sim.call_soon(chain, tag + "+", depth - 1)

    handles = []
    for index in range(120):
        roll = rng.random()
        delay = rng.choice((0.0, 0.0, 0.1, 0.5, 1.0, 2.5))
        priority = rng.choice(
            (PRIORITY_INTERRUPT, engine_mod.PRIORITY_NORMAL, PRIORITY_LOW)
        )
        if roll < 0.5:
            handles.append(
                sim.schedule(delay, note, "t{}".format(index), priority=priority)
            )
        elif roll < 0.7:
            sim.schedule(delay, chain, "c{}".format(index), rng.randint(1, 3))
        elif roll < 0.85:
            waitable = Waitable(sim)
            waitable.add_callback(lambda w, i=index: note("w{}".format(i)))
            sim.schedule(delay, waitable.succeed, None)
        else:
            handles.append(
                sim.schedule(delay, note, "x{}".format(index), priority=priority)
            )
    for handle in rng.sample(handles, len(handles) // 3):
        handle.cancel()


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_fast_lane_matches_heap_order(seed):
    traces = {}
    for fast in (False, True):
        sim = Simulator(fast_lane=fast)
        order = []
        _random_workload(sim, order, seed)
        sim.run()
        traces[fast] = (order, sim.now)
    assert traces[True] == traces[False]


def test_call_soon_interleaves_with_heap_entries_by_seq(sim):
    """A heap-scheduled zero-delay entry and a lane entry at the same
    (time, priority) must still run in seq order."""
    order = []

    def outer():
        sim.schedule(1.0, order.append, "heap-later")
        sim.call_soon(order.append, "lane-a")
        sim.schedule(0.0, order.append, "heap-now", priority=PRIORITY_LOW)
        sim.call_soon(order.append, "irq", priority=PRIORITY_INTERRUPT)
        sim.call_soon(order.append, "lane-b")

    sim.schedule(2.0, outer)
    sim.run()
    assert order == ["irq", "lane-a", "lane-b", "heap-now", "heap-later"]


def test_peek_sees_lane_entries(sim):
    sim.schedule(4.0, lambda: None)
    assert sim.peek() == 4.0
    sim.call_soon(lambda: None)
    assert sim.peek() == 0.0


def test_cancelled_lane_entry_skipped(sim):
    fired = []
    handle = sim.call_soon(fired.append, "a")
    sim.call_soon(fired.append, "b")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["b"]


def test_step_drains_lanes_and_heap_in_order(sim):
    order = []
    sim.call_soon(order.append, "soon")
    sim.schedule(1.0, order.append, "later")
    assert sim.step() and order == ["soon"]
    assert sim.step() and order == ["soon", "later"]
    assert not sim.step()


def test_lane_entry_lists_are_pooled(sim):
    """Zero-delay lane entries recycle their entry lists after dispatch."""
    done = []
    for _ in range(50):
        sim.call_soon(done.append, "x")
    sim.run()
    assert len(done) == 50
    assert sim._pool  # entries went back to the pool after dispatch
    before = len(sim._pool)
    sim.call_soon(done.append, "y")
    sim.run()
    assert len(sim._pool) == before  # reused, not grown
    stats = sim.stats()
    assert stats["pool_hits"] > 0


def test_waitable_deliveries_use_tuple_lane(sim):
    """Handle-less callback deliveries ride the delivery lane, not the pool."""
    done = []
    waitable = Waitable(sim)
    waitable.add_callback(lambda w: done.append(w))
    waitable.succeed()
    assert len(sim._dq) == 1
    sim.run()
    assert done == [waitable]
    assert not sim._dq


def test_stale_handle_cannot_cancel_recycled_entry(sim):
    """Regression: a Handle kept past dispatch must not touch the pooled
    entry list once it has been re-stamped for a different event."""
    fired = []
    stale = sim.call_soon(fired.append, "first")
    sim.run()
    assert fired == ["first"]
    # The entry list is back in the pool; the next call_soon reuses it.
    fresh = sim.call_soon(fired.append, "second")
    assert fresh._entry is stale._entry  # same recycled list object
    stale.cancel()  # must be a no-op: seq stamp no longer matches
    assert not stale.cancelled
    sim.run()
    assert fired == ["first", "second"]
    # ``cancelled`` reads never report on someone else's event: cancelling
    # the fresh entry (recycled again by now) leaves the stale handle alone.
    third = sim.call_soon(fired.append, "third")
    third.cancel()
    assert third.cancelled
    assert not stale.cancelled and not fresh.cancelled
    sim.run()
    assert fired == ["first", "second"]


def test_cancelled_heap_entries_purged_lazily():
    sim = Simulator(event_store="heap")
    handles = [sim.schedule(10.0 + i, lambda: None) for i in range(300)]
    fired = []
    sim.schedule(500.0, fired.append, "live")
    for handle in handles[:250]:
        handle.cancel()
    # The purge threshold has been crossed: the heap must have shed the
    # bulk of the cancelled entries without waiting for a run().
    assert len(sim._store.heap) <= 300 - 150
    assert sim.stats()["store_purges"] >= 1
    sim.run()
    assert fired == ["live"]


def test_schedule_at_clamps_float_drift(sim):
    """when == now 'after float accumulation' must not raise."""
    sim.schedule(0.1, lambda: None)
    sim.run()
    sim.schedule(0.2, lambda: None)
    sim.run()
    # now is 0.1 + 0.2 = 0.30000000000000004; the mathematically equal
    # target 0.3 lands a hair in the past.
    assert sim.now == 0.1 + 0.2
    fired = []
    sim.schedule_at(0.3, fired.append, "clamped")
    sim.run()
    assert fired == ["clamped"]
    assert sim.now == 0.1 + 0.2


def test_schedule_at_still_rejects_real_past(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.schedule_at(4.5, lambda: None)


def test_default_fast_lane_flag_controls_new_simulators(monkeypatch):
    monkeypatch.setattr(engine_mod, "DEFAULT_FAST_LANE", False)
    assert not Simulator()._fast
    monkeypatch.setattr(engine_mod, "DEFAULT_FAST_LANE", True)
    assert Simulator()._fast
    assert not Simulator(fast_lane=False)._fast


def test_default_event_store_flag_controls_new_simulators(monkeypatch):
    monkeypatch.setattr(engine_mod, "DEFAULT_EVENT_STORE", "heap")
    assert isinstance(Simulator()._store, engine_mod.HeapStore)
    monkeypatch.setattr(engine_mod, "DEFAULT_EVENT_STORE", "calendar")
    assert isinstance(Simulator()._store, engine_mod.CalendarQueue)
    assert isinstance(
        Simulator(event_store="heap")._store, engine_mod.HeapStore
    )
    with pytest.raises(SimError):
        Simulator(event_store="splay")
