"""Process semantics: suspension, return values, interrupts, failures."""

import pytest

from repro.sim import Interrupt, SimError


def test_process_advances_through_timeouts(sim):
    trace = []

    def worker():
        trace.append(sim.now)
        yield sim.timeout(1.5)
        trace.append(sim.now)
        yield sim.timeout(2.5)
        trace.append(sim.now)

    sim.process(worker())
    sim.run()
    assert trace == [0.0, 1.5, 4.0]


def test_process_return_value_becomes_trigger_value(sim):
    def worker():
        yield sim.timeout(1.0)
        return "result"

    proc = sim.process(worker())
    sim.run()
    assert proc.value == "result"


def test_timeout_value_sent_into_generator(sim):
    seen = []

    def worker():
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(worker())
    sim.run()
    assert seen == ["payload"]


def test_process_waiting_on_process(sim):
    def child():
        yield sim.timeout(2.0)
        return "child-done"

    def parent():
        result = yield sim.process(child())
        return "parent saw " + result

    proc = sim.process(parent())
    sim.run()
    assert proc.value == "parent saw child-done"


def test_interrupt_raises_inside_process(sim):
    caught = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((sim.now, interrupt.cause))
            return "woken"

    proc = sim.process(sleeper())
    sim.schedule(2.0, proc.interrupt, "reason")
    sim.run()
    assert caught == [(2.0, "reason")]
    assert proc.value == "woken"


def test_interrupt_after_completion_is_noop(sim):
    def quick():
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(quick())
    sim.schedule(5.0, proc.interrupt)
    sim.run()
    assert proc.value == "done"


def test_stale_wakeup_ignored_after_interrupt(sim):
    """The original timeout firing later must not resume the process."""
    resumed = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            resumed.append("bad")
        except Interrupt:
            yield sim.timeout(20.0)
            resumed.append("good")

    proc = sim.process(sleeper())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert resumed == ["good"]
    assert proc.triggered


def test_uncaught_process_exception_propagates(sim):
    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("kaboom")

    sim.process(crasher())
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run()


def test_waited_process_exception_delivered_to_waiter(sim):
    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("inner")

    outcome = []

    def parent():
        try:
            yield sim.process(crasher())
        except RuntimeError as error:
            outcome.append(str(error))

    sim.process(parent())
    sim.run()
    assert outcome == ["inner"]


def test_yielding_non_waitable_fails_process(sim):
    def bad():
        yield 42

    outcome = []

    def parent():
        try:
            yield sim.process(bad())
        except SimError as error:
            outcome.append("caught")

    sim.process(parent())
    sim.run()
    assert outcome == ["caught"]


def test_process_requires_generator(sim):
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_is_alive_tracks_lifecycle(sim):
    def worker():
        yield sim.timeout(5.0)

    proc = sim.process(worker())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive
