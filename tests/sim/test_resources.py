"""Resource, Store, and Gate synchronization primitives."""

import pytest

from repro.sim import Gate, Resource, SimError, Store


def test_resource_grants_up_to_capacity(sim):
    resource = Resource(sim, capacity=2)
    first = resource.acquire()
    second = resource.acquire()
    third = resource.acquire()
    sim.run()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.queue_length == 1


def test_resource_release_grants_fifo(sim):
    resource = Resource(sim, capacity=1)
    resource.acquire()
    order = []
    for name in ("x", "y"):
        resource.acquire().add_callback(lambda w, name=name: order.append(name))
    resource.release()
    resource.release()
    sim.run()
    assert order == ["x", "y"]


def test_release_without_acquire_rejected(sim):
    resource = Resource(sim)
    with pytest.raises(SimError):
        resource.release()


def test_resource_capacity_validation(sim):
    with pytest.raises(SimError):
        Resource(sim, capacity=0)


def test_resource_cancel_pending(sim):
    resource = Resource(sim, capacity=1)
    resource.acquire()
    pending = resource.acquire()
    resource.cancel(pending)
    resource.release()
    sim.run()
    assert not pending.triggered
    assert resource.in_use == 0


def test_store_put_get_fifo(sim):
    store = Store(sim)
    store.put("a")
    store.put("b")
    first = store.get()
    second = store.get()
    sim.run()
    assert (first.value, second.value) == ("a", "b")


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    got = store.get()
    sim.run()
    assert not got.triggered
    store.put("late")
    sim.run()
    assert got.value == "late"


def test_store_capacity_blocks_putters(sim):
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    sim.run()
    assert first.triggered and not second.triggered
    taken = store.get()
    sim.run()
    assert taken.value == "a"
    assert second.triggered
    assert store.items[0] == "b"


def test_store_try_put_try_get(sim):
    store = Store(sim, capacity=1)
    assert store.try_put("a")
    assert not store.try_put("b")
    ok, item = store.try_get()
    assert ok and item == "a"
    ok, item = store.try_get()
    assert not ok and item is None


def test_store_len_and_full(sim):
    store = Store(sim, capacity=2)
    assert not store.full
    store.put(1)
    store.put(2)
    assert store.full
    assert len(store) == 2


def test_gate_broadcasts_to_all_waiters(sim):
    gate = Gate(sim)
    waiters = [gate.wait() for _ in range(3)]
    count = gate.fire("signal")
    sim.run()
    assert count == 3
    assert all(w.value == "signal" for w in waiters)


def test_gate_fire_with_no_waiters(sim):
    gate = Gate(sim)
    assert gate.fire() == 0


def test_gate_waiters_cleared_after_fire(sim):
    gate = Gate(sim)
    gate.wait()
    gate.fire()
    assert gate.waiter_count == 0
