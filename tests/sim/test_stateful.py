"""Hypothesis stateful tests of the synchronization primitives.

These drive random put/get/acquire/release sequences and check the
invariants every higher layer depends on: FIFO delivery, conservation
of items, and capacity bounds.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.sim import Resource, Simulator, Store


class StoreMachine(RuleBasedStateMachine):
    """Model-checks Store against an ideal FIFO queue."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.store = Store(self.sim, capacity=4)
        self.model = []          # items accepted into the store, in order
        self.pending_puts = []   # blocked (waitable, item)
        self.pending_gets = []   # outstanding get waitables
        self.received = []
        self.sequence = 0

    @rule()
    def put(self):
        item = self.sequence
        self.sequence += 1
        done = self.store.put(item)
        if done.triggered:
            self._model_accept(item)
        else:
            self.pending_puts.append((done, item))
        self._reconcile()

    @rule()
    def get(self):
        got = self.store.get()
        if got.triggered:
            self._model_accept_if_put_pending()
            self.received.append(got.value)
            self._model_consume(got.value)
        else:
            self.pending_gets.append(got)
        self._reconcile()

    @rule()
    def settle(self):
        """Drain sim callbacks, then reconcile blocked operations."""
        self.sim.run()
        self._reconcile()

    def _model_accept_if_put_pending(self):
        """A get may synchronously admit a previously blocked putter."""
        still_pending = []
        for done, item in self.pending_puts:
            if done.triggered:
                self._model_accept(item)
            else:
                still_pending.append((done, item))
        self.pending_puts = still_pending

    def _reconcile(self):
        """Blocked operations may complete synchronously inside any rule
        (a put hands its item straight to a parked getter, a get frees a
        slot for a parked putter)."""
        self._model_accept_if_put_pending()
        still_getting = []
        for got in self.pending_gets:
            if got.triggered:
                self.received.append(got.value)
                self._model_consume(got.value)
            else:
                still_getting.append(got)
        self.pending_gets = still_getting

    def _model_accept(self, item):
        self.model.append(item)

    def _model_consume(self, item):
        assert self.model, "received an item the model never accepted"
        expected = self.model.pop(0)
        assert item == expected, "FIFO order violated"

    @invariant()
    def capacity_respected(self):
        assert len(self.store.items) <= 4

    @invariant()
    def received_in_submission_order(self):
        assert self.received == sorted(self.received)


class ResourceMachine(RuleBasedStateMachine):
    """Model-checks Resource grant counting."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.capacity = 3
        self.resource = Resource(self.sim, capacity=self.capacity)
        self.granted = 0
        self.waiting = []

    @rule()
    def acquire(self):
        grant = self.resource.acquire()
        if grant.triggered:
            self.granted += 1
        else:
            self.waiting.append(grant)

    @precondition(lambda self: self.granted > 0)
    @rule()
    def release(self):
        self.resource.release()
        self.granted -= 1
        # A waiter may have been promoted synchronously.
        promoted = [grant for grant in self.waiting if grant.triggered]
        for grant in promoted:
            self.waiting.remove(grant)
            self.granted += 1

    @invariant()
    def never_over_capacity(self):
        assert self.resource.in_use <= self.capacity
        assert self.granted <= self.capacity
        assert self.resource.in_use == self.granted

    @invariant()
    def waiters_only_when_full(self):
        if self.waiting:
            assert self.granted == self.capacity


TestStoreMachine = StoreMachine.TestCase
TestResourceMachine = ResourceMachine.TestCase
TestStoreMachine.settings = settings(max_examples=40, stateful_step_count=40)
TestResourceMachine.settings = settings(max_examples=40, stateful_step_count=40)
