"""Random streams and online statistics."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Histogram,
    RandomStreams,
    RunningStat,
    TimeWeightedStat,
    exponential,
    pareto,
    percentile,
    poisson,
)


# ----------------------------------------------------------------------
# RandomStreams
# ----------------------------------------------------------------------

def test_same_seed_same_stream():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(1).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_named_streams_are_independent():
    streams = RandomStreams(1)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_identity_cached():
    streams = RandomStreams(3)
    assert streams.stream("x") is streams.stream("x")


def test_adding_consumer_does_not_shift_existing_stream():
    solo = RandomStreams(5)
    values = [solo.stream("arrivals").random() for _ in range(4)]
    shared = RandomStreams(5)
    shared.stream("new-consumer").random()
    assert [shared.stream("arrivals").random() for _ in range(4)] == values


def test_fork_creates_distinct_space():
    streams = RandomStreams(2)
    child = streams.fork("child")
    assert child.stream("x").random() != streams.stream("x").random()


def test_exponential_mean():
    rng = RandomStreams(11).stream("exp")
    values = [exponential(rng, 2.0) for _ in range(20000)]
    assert abs(statistics.mean(values) - 2.0) < 0.1


def test_exponential_validates_mean():
    rng = RandomStreams(1).stream("x")
    with pytest.raises(ValueError):
        exponential(rng, 0)


def test_poisson_mean_small_and_large():
    rng = RandomStreams(11).stream("poi")
    small = [poisson(rng, 3.0) for _ in range(5000)]
    large = [poisson(rng, 80.0) for _ in range(5000)]
    assert abs(statistics.mean(small) - 3.0) < 0.15
    assert abs(statistics.mean(large) - 80.0) < 1.0
    assert poisson(rng, 0) == 0


def test_pareto_bounded_below():
    rng = RandomStreams(11).stream("par")
    values = [pareto(rng, 2.5, 1.0) for _ in range(1000)]
    assert min(values) >= 1.0


# ----------------------------------------------------------------------
# RunningStat
# ----------------------------------------------------------------------

@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
def test_running_stat_matches_statistics_module(values):
    stat = RunningStat()
    for value in values:
        stat.add(value)
    assert stat.count == len(values)
    assert math.isclose(stat.mean, statistics.fmean(values), rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(
        stat.variance, statistics.variance(values), rel_tol=1e-6, abs_tol=1e-4
    )
    assert stat.minimum == min(values)
    assert stat.maximum == max(values)


@given(
    st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=80),
    st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=80),
)
def test_running_stat_merge_equals_combined(a_values, b_values):
    merged = RunningStat()
    for value in a_values:
        merged.add(value)
    other = RunningStat()
    for value in b_values:
        other.add(value)
    merged.merge(other)
    combined = RunningStat()
    for value in a_values + b_values:
        combined.add(value)
    assert merged.count == combined.count
    assert math.isclose(merged.mean, combined.mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(merged.variance, combined.variance, rel_tol=1e-6, abs_tol=1e-3)


def test_running_stat_empty():
    stat = RunningStat()
    assert stat.mean == 0.0
    assert stat.variance == 0.0
    assert stat.as_dict()["count"] == 0


def test_merge_into_empty():
    stat = RunningStat()
    other = RunningStat()
    other.add(5.0)
    stat.merge(other)
    assert stat.mean == 5.0


# ----------------------------------------------------------------------
# TimeWeightedStat / Histogram / percentile
# ----------------------------------------------------------------------

def test_time_weighted_mean():
    stat = TimeWeightedStat(0.0, initial=0.0)
    stat.update(2.0, 10.0)  # 0 for [0,2)
    stat.update(4.0, 0.0)   # 10 for [2,4)
    assert math.isclose(stat.mean(4.0), 5.0)
    assert stat.maximum == 10.0


def test_time_weighted_rejects_backwards_time():
    stat = TimeWeightedStat(5.0)
    with pytest.raises(ValueError):
        stat.update(4.0, 1.0)


def test_histogram_binning_and_overflow():
    hist = Histogram([0, 1, 2, 4])
    for value in (0.5, 1.5, 1.7, 3.0, 9.0, -1.0):
        hist.add(value)
    assert hist.counts == [1, 2, 1]
    assert hist.overflow == 1
    assert hist.underflow == 1
    assert hist.total == 6


def test_histogram_quantile():
    hist = Histogram([0, 1, 2, 3])
    for value in (0.5, 1.5, 2.5):
        hist.add(value)
    assert hist.quantile(0.5) == 1.5
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_needs_two_edges():
    with pytest.raises(ValueError):
        Histogram([1])


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
def test_percentile_bounds(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


def test_percentile_interpolates():
    assert percentile([0, 10], 50) == 5.0
    with pytest.raises(ValueError):
        percentile([], 50)
