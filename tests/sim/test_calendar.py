"""Calendar-queue event store: ordering parity, window mechanics, slots.

The calendar queue is the default future-event backend; the binary heap
(``Simulator(event_store="heap")``) stays as the determinism oracle.
These tests pin the load-bearing claims: all four
``{fast_lane} x {event_store}`` combinations dispatch in exactly the
same order, overflow spills migrate without ever splitting a tick, and
the recycled slot columns can never be corrupted by a stale handle.
"""

import random

import pytest

from repro.sim import SimError, Simulator
from repro.sim.engine import CalendarQueue, DEFAULT_CALENDAR_WIDTH

from tests.sim.test_fast_lane import _random_workload

_CONFIGS = [
    (fast, store) for fast in (False, True) for store in ("heap", "calendar")
]


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_all_backend_combinations_match(seed):
    traces = {}
    for fast, store in _CONFIGS:
        sim = Simulator(fast_lane=fast, event_store=store)
        order = []
        _random_workload(sim, order, seed)
        sim.run()
        traces[(fast, store)] = (order, sim.now)
    reference = traces[(False, "heap")]
    for config, trace in traces.items():
        assert trace == reference, config


@pytest.mark.parametrize("store", ["heap", "calendar"])
def test_far_future_timers_fire_in_order(store):
    """Timers far beyond the calendar horizon (overflow spills) still fire
    in exact (time, seq) order after the window jumps forward."""
    sim = Simulator(event_store=store)
    width = DEFAULT_CALENDAR_WIDTH
    fired = []
    rng = random.Random(5)
    delays = [rng.uniform(0.0, 50_000.0) * width for _ in range(500)]
    # Duplicate a few exact times so seq has to break ties.
    delays += delays[:20]
    for index, delay in enumerate(delays):
        sim.schedule(delay, fired.append, (delay, index))
    sim.run()
    assert fired == sorted(fired, key=lambda item: (item[0], item[1]))
    if store == "calendar":
        stats = sim.stats()
        assert stats["store_spills"] > 0  # overflow heap was exercised
        assert stats["store_pulls"] > 0  # and migrated into the window


def test_same_tick_entries_never_split_across_window_jump():
    """Entries in one tick must all dispatch from the active bucket even
    when the window jumps to reach them."""
    sim = Simulator()
    width = DEFAULT_CALENDAR_WIDTH
    fired = []
    far = 100_000 * width  # far beyond the initial horizon
    sim.schedule(far + 0.2 * width, fired.append, "b")
    sim.schedule(far + 0.1 * width, fired.append, "a")
    sim.schedule(far + 0.2 * width, fired.append, "c")  # same tick as "b"
    sim.schedule(0.0, fired.append, "now")
    sim.run()
    assert fired == ["now", "a", "b", "c"]


def test_calendar_slot_columns_grow_and_recycle():
    store = CalendarQueue()
    sim = Simulator()
    sim._store = store
    initial = len(store._fns)
    handles = [
        sim.schedule(1.0 + i * 1e-4, lambda: None) for i in range(initial * 2)
    ]
    assert len(store._fns) >= initial * 2
    assert store.size == len(handles)
    sim.run()
    assert store.size == 0
    assert len(store._free) == len(store._fns)  # every slot came back


def test_cancelled_calendar_entries_purged_lazily():
    sim = Simulator(event_store="calendar")
    handles = [sim.schedule(10.0 + i, lambda: None) for i in range(300)]
    fired = []
    sim.schedule(500.0, fired.append, "live")
    for handle in handles[:250]:
        handle.cancel()
        assert handle.cancelled
    stats = sim.stats()
    assert stats["store_purges"] >= 1
    assert stats["store_size"] <= 300 - 150
    sim.run()
    assert fired == ["live"]


def test_stale_slot_handle_cannot_cancel_recycled_slot():
    """Regression companion to the pooled-entry guard: once a calendar
    slot is freed and re-used, the old handle's generation mismatches."""
    sim = Simulator(event_store="calendar")
    fired = []
    stale = sim.schedule(1.0, fired.append, "first")
    sim.run()
    assert fired == ["first"]
    fresh = sim.schedule(1.0, fired.append, "second")
    # The freed slot is recycled for the new entry.
    assert fresh._slot == stale._slot
    stale.cancel()  # generation mismatch: must be a no-op
    assert not stale.cancelled
    sim.run()
    assert fired == ["first", "second"]


def test_cancel_after_dispatch_is_noop():
    sim = Simulator(event_store="calendar")
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.run()
    handle.cancel()
    assert not handle.cancelled
    assert fired == ["x"]


def test_zero_delay_custom_priority_enters_store_in_order():
    """schedule(0, priority=outside the lane bands) routes to the store at
    the *current* tick — the tick <= active_tick push path."""
    sim = Simulator(event_store="calendar")
    order = []

    def outer():
        sim.schedule(0.0, order.append, "late", priority=7)
        sim.call_soon(order.append, "lane")
        sim.schedule(0.0, order.append, "late2", priority=7)

    sim.schedule(2.0, outer)
    sim.run()
    assert order == ["lane", "late", "late2"]


def test_invalid_calendar_parameters_rejected():
    with pytest.raises(SimError):
        CalendarQueue(width=0.0)
    with pytest.raises(SimError):
        CalendarQueue(nbuckets=0)


def test_simulator_stats_shape():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.call_soon(lambda: None)
    stats = sim.stats()
    assert stats["events_scheduled"] == 2
    assert stats["lane_depth_normal"] == 1
    assert stats["store_size"] == 1
    sim.run()
    stats = sim.stats()
    assert stats["store_size"] == 0
    assert stats["lane_depth_normal"] == 0
    for key in ("pool_hits", "pool_misses", "store_spills", "store_purges"):
        assert key in stats
