"""The self-profiling harness (``python -m repro profile``)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.observability.tracer import validate_chrome_trace
from repro.profiling import (
    SCENARIOS,
    _package_of,
    format_report,
    run_profile,
)


def test_microbench_report_shape():
    report = run_profile("microbench", smoke=True, top=10)
    assert report.scenario == "microbench"
    assert report.events > 20_000  # churn events + standing timers
    assert report.wall_seconds > 0.0
    assert report.events_per_sec > 0.0
    assert len(report.hotspots) <= 10
    packages = dict((name, secs) for name, secs, _calls in report.packages)
    # The engine scenario must spend the bulk of its time in repro.sim.
    assert packages.get("sim", 0.0) == max(packages.values())
    for _name, calls, self_s, cum_s in report.hotspots:
        assert calls > 0
        assert cum_s >= self_s >= 0.0


def test_chrome_trace_output_validates():
    report = run_profile("microbench", smoke=True, top=5)
    doc = report.chrome_trace()
    count = validate_chrome_trace(doc)  # raises on any violation
    # 5 hotspot slices + one slice per package bucket.
    assert count == 5 + len(report.packages)
    assert doc["otherData"]["scenario"] == "microbench"
    assert doc["otherData"]["events"] == report.events


def test_report_round_trips_through_json():
    report = run_profile("sketch", smoke=True, top=5)
    blob = json.dumps(report.to_dict())
    back = json.loads(blob)
    assert back["scenario"] == "sketch"
    assert back["events"] == report.events
    assert len(back["hotspots"]) <= 5
    assert {entry["package"] for entry in back["packages"]} == {
        name for name, _secs, _calls in report.packages
    }


def test_format_report_prints_tables():
    report = run_profile("microbench", smoke=True, top=3)
    text = format_report(report)
    assert "self time by package" in text
    assert "top 3 hotspots" in text
    assert "events/s" in text


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_profile("warp-drive")


def test_package_of_buckets():
    assert _package_of("/x/src/repro/sim/engine.py") == "sim"
    assert _package_of("/x/src/repro/observability/sketches.py") == (
        "observability"
    )
    assert _package_of("/x/src/repro/profiling.py") == "repro (other)"
    assert _package_of("~") == "stdlib/other"
    assert _package_of("/usr/lib/python3/heapq.py") == "stdlib/other"


def test_cli_profile_smoke(tmp_path, capsys):
    trace_path = tmp_path / "prof_trace.json"
    json_path = tmp_path / "prof.json"
    assert main([
        "profile", "microbench", "--smoke", "--top", "5",
        "--trace", str(trace_path), "--json", str(json_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "self time by package" in out
    assert "events/s" in out
    doc = json.loads(trace_path.read_text())
    validate_chrome_trace(doc)
    back = json.loads(json_path.read_text())
    assert back["scenario"] == "microbench"


def test_cli_profile_parser():
    args = build_parser().parse_args(["profile", "nfs"])
    assert args.scenario == "nfs"
    assert args.smoke is False and args.top == 15
    assert args.trace is None and args.json is None
    with pytest.raises(SystemExit):
        build_parser().parse_args(["profile", "bogus"])
    assert set(SCENARIOS) == {"microbench", "sketch", "nfs", "rubis"}
