"""Shared mini-application used by the core toolkit tests."""

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig


def build_monitored_pair(seed=13, config=None, monitored=("server",),
                         gpa_node="mgmt"):
    """client/server/mgmt cluster with SysProf installed and started."""
    cluster = Cluster(seed=seed)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(
        cluster, config or SysProfConfig(eviction_interval=0.05)
    )
    sysprof.install(monitored=list(monitored), gpa_node=gpa_node)
    sysprof.start()
    return cluster, sysprof


def echo_server(ctx, port=8080, compute=0.002, response_bytes=3000):
    lsock = yield from ctx.listen(port)
    while True:
        sock = yield from ctx.accept(lsock)
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            yield from ctx.compute(compute)
            yield from ctx.send_message(sock, response_bytes, kind="reply")


def request_client(ctx, server="server", port=8080, count=10,
                   request_bytes=10000, think=0.01, kind="query"):
    sock = yield from ctx.connect(server, port)
    for _ in range(count):
        yield from ctx.send_message(sock, request_bytes, kind=kind)
        yield from ctx.recv_message(sock)
        if think:
            yield from ctx.sleep(think)
    yield from ctx.close(sock)
    return count


def drive_traffic(cluster, sysprof, count=10, run_until=3.0):
    cluster.node("server").spawn("srv", echo_server)
    cluster.node("client").spawn("cli", request_client, "server", 8080, count)
    cluster.run(until=run_until)
    sysprof.flush()
