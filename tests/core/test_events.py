"""MonEvent and event-type interning."""

from repro.core.events import ETYPE_IDS, MonEvent, intern_etype
from repro.ossim.tracepoints import ALL_EVENT_TYPES


def test_static_types_interned_densely():
    ids = [ETYPE_IDS[name] for name in ALL_EVENT_TYPES]
    assert ids == list(range(len(ALL_EVENT_TYPES)))


def test_dynamic_intern_stable():
    first = intern_etype("custom.event.xyz")
    second = intern_etype("custom.event.xyz")
    assert first == second
    assert first >= len(ALL_EVENT_TYPES)


def test_mon_event_accessors():
    event = MonEvent("sock.enqueue", 1.5, "n1", {
        "src_ip": "10.0.0.1", "src_port": 5, "dst_ip": "10.0.0.2",
        "dst_port": 80, "size": 100,
    })
    assert event["size"] == 100
    assert event.get("missing", "default") == "default"
    assert "size" in event and "missing" not in event
    assert event.flow_tuple() == ("10.0.0.1", 5, "10.0.0.2", 80)
    assert "sock.enqueue" in repr(event)
