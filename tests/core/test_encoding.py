"""PBIO-style binary encoding: formats, roundtrips, self-description."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import (
    FormatRegistry,
    decode_records,
    encode_records,
    encode_text,
)

FIELDS = (
    ("id", "u32"),
    ("value", "f64"),
    ("count", "i64"),
    ("port", "u16"),
    ("flag", "bool"),
    ("name", "str12"),
)


def _registry():
    registry = FormatRegistry()
    return registry, registry.register("test.record", FIELDS)


def test_roundtrip_single_record():
    registry, fmt = _registry()
    record = {"id": 7, "value": 3.25, "count": -9, "port": 8080,
              "flag": True, "name": "hello"}
    blob = encode_records(fmt, [record])
    decoded_fmt, records = decode_records(registry, blob)
    assert decoded_fmt is fmt
    assert records == [record]


def test_roundtrip_many_records():
    registry, fmt = _registry()
    originals = [
        {"id": i, "value": i * 1.5, "count": i - 50, "port": i % 65536,
         "flag": bool(i % 2), "name": "r{}".format(i)}
        for i in range(100)
    ]
    _, decoded = decode_records(registry, encode_records(fmt, originals))
    assert decoded == originals


def test_string_truncation_and_padding():
    registry, fmt = _registry()
    record = {"id": 1, "value": 0.0, "count": 0, "port": 0, "flag": False,
              "name": "much-longer-than-twelve-bytes"}
    _, decoded = decode_records(registry, encode_records(fmt, [record]))
    assert decoded[0]["name"] == "much-longer-"


def test_empty_record_list():
    registry, fmt = _registry()
    _, decoded = decode_records(registry, encode_records(fmt, []))
    assert decoded == []


def test_record_size_fixed():
    _, fmt = _registry()
    assert fmt.record_size == 4 + 8 + 8 + 2 + 1 + 12


def test_bad_magic_rejected():
    registry, fmt = _registry()
    blob = encode_records(fmt, [])
    with pytest.raises(ValueError, match="magic"):
        decode_records(registry, b"\x00\x00" + blob[2:])


def test_truncated_blob_rejected():
    registry, fmt = _registry()
    blob = encode_records(
        fmt,
        [{"id": 1, "value": 0.0, "count": 0, "port": 0, "flag": False, "name": "x"}],
    )
    with pytest.raises(ValueError, match="truncated"):
        decode_records(registry, blob[:-4])


def test_self_describing_adopt():
    """A decoder that never saw the format learns it from the descriptor."""
    _, fmt = _registry()
    fresh = FormatRegistry()
    adopted = fresh.adopt(fmt.describe())
    assert adopted.fields == fmt.fields
    assert adopted.format_id == fmt.format_id
    record = {"id": 3, "value": 1.0, "count": 2, "port": 1, "flag": True, "name": "ok"}
    blob = encode_records(fmt, [record])
    _, decoded = decode_records(fresh, blob)
    assert decoded == [record]


def test_register_is_idempotent():
    registry = FormatRegistry()
    first = registry.register("f", FIELDS)
    second = registry.register("f", FIELDS)
    assert first is second


def test_conflicting_reregistration_rejected():
    registry = FormatRegistry()
    registry.register("f", FIELDS)
    with pytest.raises(ValueError):
        registry.register("f", (("other", "u32"),))


def test_unknown_field_type_rejected():
    registry = FormatRegistry()
    with pytest.raises(ValueError):
        registry.register("bad", (("x", "float128"),))


def test_binary_much_smaller_than_text():
    _, fmt = _registry()
    records = [
        {"id": i, "value": 1.0, "count": 2, "port": 3, "flag": False, "name": "n"}
        for i in range(50)
    ]
    binary = encode_records(fmt, records)
    text = encode_text(records)
    assert len(binary) < len(text) / 2


@given(
    st.lists(
        st.fixed_dictionaries(
            {
                "id": st.integers(0, 2**32 - 1),
                "value": st.floats(allow_nan=False, allow_infinity=False,
                                   width=64),
                "count": st.integers(-(2**63), 2**63 - 1),
                "port": st.integers(0, 65535),
                "flag": st.booleans(),
                "name": st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    max_size=12,
                ),
            }
        ),
        max_size=20,
    )
)
def test_roundtrip_property(records):
    registry = FormatRegistry()
    fmt = registry.register("prop.record", FIELDS)
    _, decoded = decode_records(registry, encode_records(fmt, records))
    assert decoded == records
