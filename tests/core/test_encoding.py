"""PBIO-style binary encoding: formats, roundtrips, self-description."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import (
    FormatRegistry,
    FrameDecoder,
    RecordView,
    _PACK_CHUNK,
    decode_frame,
    decode_records,
    encode_frame,
    encode_records,
    encode_text,
)

FIELDS = (
    ("id", "u32"),
    ("value", "f64"),
    ("count", "i64"),
    ("port", "u16"),
    ("flag", "bool"),
    ("name", "str12"),
)


def _registry():
    registry = FormatRegistry()
    return registry, registry.register("test.record", FIELDS)


def test_roundtrip_single_record():
    registry, fmt = _registry()
    record = {"id": 7, "value": 3.25, "count": -9, "port": 8080,
              "flag": True, "name": "hello"}
    blob = encode_records(fmt, [record])
    decoded_fmt, records = decode_records(registry, blob)
    assert decoded_fmt is fmt
    assert records == [record]


def test_roundtrip_many_records():
    registry, fmt = _registry()
    originals = [
        {"id": i, "value": i * 1.5, "count": i - 50, "port": i % 65536,
         "flag": bool(i % 2), "name": "r{}".format(i)}
        for i in range(100)
    ]
    _, decoded = decode_records(registry, encode_records(fmt, originals))
    assert decoded == originals


def test_string_truncation_and_padding():
    registry, fmt = _registry()
    record = {"id": 1, "value": 0.0, "count": 0, "port": 0, "flag": False,
              "name": "much-longer-than-twelve-bytes"}
    _, decoded = decode_records(registry, encode_records(fmt, [record]))
    assert decoded[0]["name"] == "much-longer-"


def test_multibyte_truncation_at_codepoint_boundary():
    """Truncation must not cut a multibyte character mid-sequence.

    "a" + six "é" is 13 UTF-8 bytes with the sixth "é" spanning bytes
    11-12; a blind ``data[:12]`` cut would keep its lead byte and the
    decoder could only render U+FFFD.  Regression test for the ``strN``
    fix: the whole straddling character is dropped instead.
    """
    registry, fmt = _registry()
    record = {"id": 1, "value": 0.0, "count": 0, "port": 0, "flag": False,
              "name": "a" + "é" * 6}
    _, decoded = decode_records(registry, encode_records(fmt, [record]))
    assert decoded[0]["name"] == "a" + "é" * 5
    assert "�" not in decoded[0]["name"]


def test_truncation_of_wide_codepoints():
    # Four-byte emoji starting at byte 10 straddles the 12-byte width:
    # it must be dropped whole, not split after two bytes.
    registry, fmt = _registry()
    record = {"id": 1, "value": 0.0, "count": 0, "port": 0, "flag": False,
              "name": "ab" + "\U0001f600" * 4}
    _, decoded = decode_records(registry, encode_records(fmt, [record]))
    assert decoded[0]["name"] == "ab" + "\U0001f600" * 2
    assert "�" not in decoded[0]["name"]


def test_empty_record_list():
    registry, fmt = _registry()
    _, decoded = decode_records(registry, encode_records(fmt, []))
    assert decoded == []


def test_record_size_fixed():
    _, fmt = _registry()
    assert fmt.record_size == 4 + 8 + 8 + 2 + 1 + 12


def test_bad_magic_rejected():
    registry, fmt = _registry()
    blob = encode_records(fmt, [])
    with pytest.raises(ValueError, match="magic"):
        decode_records(registry, b"\x00\x00" + blob[2:])


def test_truncated_blob_rejected():
    registry, fmt = _registry()
    blob = encode_records(
        fmt,
        [{"id": 1, "value": 0.0, "count": 0, "port": 0, "flag": False, "name": "x"}],
    )
    with pytest.raises(ValueError, match="truncated"):
        decode_records(registry, blob[:-4])


def test_self_describing_adopt():
    """A decoder that never saw the format learns it from the descriptor."""
    _, fmt = _registry()
    fresh = FormatRegistry()
    adopted = fresh.adopt(fmt.describe())
    assert adopted.fields == fmt.fields
    assert adopted.format_id == fmt.format_id
    record = {"id": 3, "value": 1.0, "count": 2, "port": 1, "flag": True, "name": "ok"}
    blob = encode_records(fmt, [record])
    _, decoded = decode_records(fresh, blob)
    assert decoded == [record]


def test_register_is_idempotent():
    registry = FormatRegistry()
    first = registry.register("f", FIELDS)
    second = registry.register("f", FIELDS)
    assert first is second


def test_conflicting_reregistration_rejected():
    registry = FormatRegistry()
    registry.register("f", FIELDS)
    with pytest.raises(ValueError):
        registry.register("f", (("other", "u32"),))


def test_unknown_field_type_rejected():
    registry = FormatRegistry()
    with pytest.raises(ValueError):
        registry.register("bad", (("x", "float128"),))


def test_binary_much_smaller_than_text():
    _, fmt = _registry()
    records = [
        {"id": i, "value": 1.0, "count": 2, "port": 3, "flag": False, "name": "n"}
        for i in range(50)
    ]
    binary = encode_records(fmt, records)
    text = encode_text(records)
    assert len(binary) < len(text) / 2


# ----------------------------------------------------------------------
# frames: the batched dissemination wire format
# ----------------------------------------------------------------------


def _sample_records(n):
    return [
        {"id": i, "value": i * 0.5, "count": i - 10, "port": i % 65536,
         "flag": bool(i % 2), "name": "rec{}".format(i)}
        for i in range(n)
    ]


def _as_rows(fmt, records):
    return [tuple(record[name] for name in fmt.names) for record in records]


def test_frame_roundtrip_rows():
    registry, fmt = _registry()
    records = _sample_records(40)
    rows = _as_rows(fmt, records)
    decoded_fmt, decoded = decode_frame(registry, encode_frame(fmt, rows))
    assert decoded_fmt is fmt
    assert [fmt.row_to_dict(row) for row in decoded] == records


def test_frame_accepts_dict_records():
    registry, fmt = _registry()
    records = _sample_records(7)
    _, decoded = decode_frame(registry, encode_frame(fmt, records))
    assert [fmt.row_to_dict(row) for row in decoded] == records


def test_frame_matches_per_record_payload():
    """Same record images on the wire; only the 8-byte header differs."""
    registry, fmt = _registry()
    records = _sample_records(11)
    blob_records = encode_records(fmt, records)
    blob_frame = encode_frame(fmt, _as_rows(fmt, records))
    assert blob_records[8:] == blob_frame[8:]
    assert len(blob_records) == len(blob_frame)


def test_empty_frame():
    registry, fmt = _registry()
    _, decoded = decode_frame(registry, encode_frame(fmt, []))
    assert decoded == []


def test_frame_bad_magic_rejected():
    registry, fmt = _registry()
    blob = encode_frame(fmt, _as_rows(fmt, _sample_records(2)))
    with pytest.raises(ValueError, match="magic"):
        decode_frame(registry, b"\x00\x00" + blob[2:])
    # A per-record blob is not a frame (and vice versa).
    with pytest.raises(ValueError, match="magic"):
        decode_frame(registry, encode_records(fmt, _sample_records(2)))


def test_truncated_frame_rejected():
    registry, fmt = _registry()
    blob = encode_frame(fmt, _as_rows(fmt, _sample_records(3)))
    with pytest.raises(ValueError, match="truncated"):
        decode_frame(registry, blob[:-5])


def test_frame_larger_than_pack_chunk():
    """> _PACK_CHUNK records exercise the chunked multi-record packers."""
    registry, fmt = _registry()
    records = _sample_records(_PACK_CHUNK + 37)
    _, decoded = decode_frame(
        registry, encode_frame(fmt, _as_rows(fmt, records))
    )
    assert [fmt.row_to_dict(row) for row in decoded] == records


def test_packer_cache_reused_and_bounded():
    _, fmt = _registry()
    assert fmt.packer(8) is fmt.packer(8)
    assert fmt.packer(1).size * 8 == fmt.packer(8).size
    with pytest.raises(ValueError):
        fmt.packer(_PACK_CHUNK + 1)


def test_frame_decoder_streaming():
    """The GPA side: descriptor first, then frames, on a fresh registry."""
    _, fmt = _registry()
    decoder = FrameDecoder()
    adopted = decoder.feed_descriptor(fmt.describe())
    assert adopted.fields == fmt.fields
    records = _sample_records(9)
    for chunk in (records[:4], records[4:]):
        got_fmt, rows = decoder.feed(encode_frame(fmt, _as_rows(fmt, chunk)))
        assert got_fmt.name == fmt.name
        assert [got_fmt.row_to_dict(row) for row in rows] == chunk
    assert decoder.stats() == {"frames_decoded": 2, "records_decoded": 9}


def test_frame_decoder_unknown_format_raises():
    _, fmt = _registry()
    decoder = FrameDecoder()  # never fed the descriptor
    with pytest.raises(KeyError):
        decoder.feed(encode_frame(fmt, _as_rows(fmt, _sample_records(1))))


def test_record_view_exposes_row_as_mapping():
    _, fmt = _registry()
    records = _sample_records(2)
    rows = _as_rows(fmt, records)
    view = RecordView(fmt)
    assert view.bind(rows[0])["name"] == "rec0"
    assert view.get("port") == 0
    assert view.get("missing", 42) == 42
    assert "flag" in view and "missing" not in view
    assert tuple(view.keys()) == fmt.names
    assert view.as_dict() == records[0]
    # One reused view: bind() swaps the row in place.
    assert view.bind(rows[1])["name"] == "rec1"


RECORDS_STRATEGY = st.lists(
    st.fixed_dictionaries(
        {
            "id": st.integers(0, 2**32 - 1),
            "value": st.floats(allow_nan=False, allow_infinity=False,
                               width=64),
            "count": st.integers(-(2**63), 2**63 - 1),
            "port": st.integers(0, 65535),
            "flag": st.booleans(),
            "name": st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=12,
            ),
        }
    ),
    max_size=20,
)


@given(RECORDS_STRATEGY)
def test_roundtrip_property(records):
    registry = FormatRegistry()
    fmt = registry.register("prop.record", FIELDS)
    _, decoded = decode_records(registry, encode_records(fmt, records))
    assert decoded == records


@given(RECORDS_STRATEGY)
def test_frame_roundtrip_property(records):
    """Frames decode to exactly what per-record blobs decode to."""
    registry = FormatRegistry()
    fmt = registry.register("prop.record", FIELDS)
    rows = [tuple(record[name] for name in fmt.names) for record in records]
    _, decoded = decode_frame(registry, encode_frame(fmt, rows))
    assert [fmt.row_to_dict(row) for row in decoded] == records


# ----------------------------------------------------------------------
# numpy kernels: the vectorized frame paths must be indistinguishable
# from the pure-struct ones — same bytes out, same values back.
# ----------------------------------------------------------------------

from repro.core import encoding as encoding_mod  # noqa: E402


def _sample_rows(fmt, n=1200):
    """Rows crossing the _PACK_CHUNK boundary, with awkward strings."""
    rows = []
    for i in range(n):
        name = ["plain", "é-accent", "日本語テキスト", "", "x" * 40][i % 5]
        rows.append((
            i, i * 0.625, i - 600, i % 65536, bool(i % 3), name,
        ))
    return rows


def test_numpy_decode_matches_struct_decode(monkeypatch):
    if encoding_mod._np is None:
        pytest.skip("numpy unavailable")
    registry, fmt = _registry()
    rows = _sample_rows(fmt)
    blob = encode_frame(fmt, rows)
    _, vectorized = decode_frame(registry, blob)
    monkeypatch.setattr(encoding_mod, "_np", None)
    _, scalar = decode_frame(registry, blob)
    assert [tuple(r) for r in vectorized] == [tuple(r) for r in scalar]


def test_encode_frame_bytes_identical_with_and_without_numpy(monkeypatch):
    """encode_frame itself is struct-based either way; pin the bytes."""
    _registry_a, fmt_a = _registry()
    rows = _sample_rows(fmt_a, n=300)
    with_np = encode_frame(fmt_a, rows)
    monkeypatch.setattr(encoding_mod, "_np", None)
    registry_b = FormatRegistry()
    fmt_b = registry_b.register("test.record", FIELDS)
    assert encode_frame(fmt_b, rows) == with_np


def test_encode_frame_array_matches_row_encoding():
    if encoding_mod._np is None:
        pytest.skip("numpy unavailable")
    np = encoding_mod._np
    registry, fmt = _registry()
    rows = [(i, i * 1.5, -i, i, bool(i % 2), "n{}".format(i))
            for i in range(500)]
    # Build the columnar producer's array (strings pre-encoded to bytes).
    wire = [tuple(fmt._wire_values(row)) for row in rows]
    array = np.array(wire, dtype=fmt.numpy_dtype())
    assert encoding_mod.encode_frame_array(fmt, array) == encode_frame(fmt, rows)


def test_decode_frame_array_columnar_view():
    if encoding_mod._np is None:
        pytest.skip("numpy unavailable")
    registry, fmt = _registry()
    rows = [(i, i * 0.5, i, i, False, "r{}".format(i)) for i in range(64)]
    blob = encode_frame(fmt, rows)
    got_fmt, array = encoding_mod.decode_frame_array(registry, blob)
    assert got_fmt is fmt
    assert array.shape == (64,)
    assert array["value"].sum() == sum(r[1] for r in rows)
    assert array["id"].tolist() == list(range(64))


def test_array_functions_require_numpy(monkeypatch):
    registry, fmt = _registry()
    blob = encode_frame(fmt, [])
    monkeypatch.setattr(encoding_mod, "_np", None)
    with pytest.raises(RuntimeError):
        encoding_mod.decode_frame_array(registry, blob)
    with pytest.raises(RuntimeError):
        encoding_mod.encode_frame_array(fmt, None)


def test_numpy_dtype_layout_matches_struct():
    if encoding_mod._np is None:
        pytest.skip("numpy unavailable")
    _registry_x, fmt = _registry()
    dtype = fmt.numpy_dtype()
    assert dtype is not None
    assert dtype.itemsize == fmt.record_size
    assert dtype.names == fmt.names
