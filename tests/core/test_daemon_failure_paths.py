"""Dissemination-daemon behavior when its subscriber misbehaves.

The bugs under regression: the old ``_endpoint_socket`` cached ``None``
for a dead endpoint (so it never reconnected) while every publish wakeup
still dialed the dead peer (so there was no pacing either), and
``reset_endpoint`` leaked one ``_formats_sent`` entry per subscriber
restart.
"""

import pytest

from repro.core import SysProfConfig
from repro.experiments.common import trace_digest
from repro.faults import FaultInjector, FaultSchedule
from tests.core.helpers import build_monitored_pair, drive_traffic


def _advance(cluster, span):
    cluster.run(until=cluster.sim.now + span)


def test_dead_subscriber_dials_are_backoff_bounded():
    """~60 publish wakeups against a dead GPA must not mean ~60 dials."""
    cluster, sysprof = build_monitored_pair()
    daemon = sysprof.monitor("server").daemon
    _advance(cluster, 0.2)  # let the first publishes connect normally
    sysprof.gpa.kill()
    _advance(cluster, 3.0)
    # Nodestats evictions fire every 0.05s, so the daemon woke to publish
    # on the order of 60 times while the subscriber was down.  Backoff
    # caps actual dials near the retry budget; the rest are window skips.
    wakeups = int(3.0 / daemon.eviction_interval)
    assert daemon.send_errors >= 1  # the established socket was reset
    assert 1 <= daemon.connect_attempts - 1 <= daemon.reconnect_max_retries + 1
    assert daemon.connect_attempts < wakeups // 2
    assert daemon.backoff_skips > daemon.connect_attempts
    assert daemon.stats()["backoff_skips"] == daemon.backoff_skips


def test_formats_sent_does_not_grow_across_subscriber_restarts():
    cluster, sysprof = build_monitored_pair()
    daemon = sysprof.monitor("server").daemon
    for _ in range(3):
        _advance(cluster, 1.0)
        sysprof.gpa.kill()
        _advance(cluster, 0.3)
        sysprof.gpa.restart()
    _advance(cluster, 1.0)
    # One subscriber endpoint -> at most one descriptor-set entry, ever.
    # (Before the fix this held one dead-socket tuple per restart.)
    assert len(daemon._formats_sent) <= 1
    assert len(daemon._sockets) <= 1
    assert daemon.reconnects >= 3
    assert sysprof.gpa.restarts == 3


@pytest.mark.parametrize("frame_mode", [True, False])
def test_subscriber_death_mid_publish_and_recovery(frame_mode):
    """Kill the GPA mid-run, restart it, and watch the daemon recover."""
    config = SysProfConfig(
        eviction_interval=0.05, frame_dissemination=frame_mode
    )
    cluster, sysprof = build_monitored_pair(config=config)
    daemon = sysprof.monitor("server").daemon

    from tests.core.helpers import echo_server, request_client

    cluster.node("server").spawn("srv", echo_server)
    cluster.node("client").spawn(
        "cli", request_client, "server", 8080, 120, 10000, 0.02
    )

    _advance(cluster, 1.0)
    format_sends_before = daemon.format_sends
    received_before = sysprof.gpa.records_received
    assert received_before > 0

    sysprof.gpa.kill()
    _advance(cluster, 0.5)
    assert daemon.send_errors >= 1  # peer died mid-publish
    assert daemon.backoff_skips >= 1  # retries were paced, not hammered

    sysprof.gpa.restart()
    _advance(cluster, 2.0)
    sysprof.flush()
    assert daemon.reconnects >= 1
    # The fresh connection re-learned the format descriptors...
    assert daemon.format_sends > format_sends_before
    # ...and records flow into the restarted analyzer again.
    assert sysprof.gpa.records_received > received_before
    assert daemon.endpoints_abandoned == 0
    assert sysprof.gpa.stats()["restarts"] == 1


def test_no_fault_runs_are_digest_identical():
    """The recovery machinery must be invisible when nothing fails."""

    def one_run(arm_empty_schedule):
        cluster, sysprof = build_monitored_pair(seed=17)
        if arm_empty_schedule:
            FaultInjector(cluster, sysprof=sysprof).arm(FaultSchedule())
        drive_traffic(cluster, sysprof)
        digest = trace_digest(sysprof.gpa.query_interactions())
        return digest, sysprof.monitor("server").daemon.stats()

    plain_a, stats_a = one_run(False)
    plain_b, stats_b = one_run(False)
    armed, stats_c = one_run(True)
    assert plain_a == plain_b == armed
    assert stats_a == stats_b == stats_c
    for stats in (stats_a, stats_c):
        assert stats["send_errors"] == 0
        assert stats["reconnects"] == 0
        assert stats["backoff_skips"] == 0
        assert stats["endpoints_abandoned"] == 0
        assert stats["connect_attempts"] == 1  # the one real connect


def test_gpa_frames_received_is_cumulative_across_restarts():
    """Regression: ``restart()`` rebuilds the frame decoder, which used to
    silently zero ``stats()["frames_received"]`` — the one ingest counter
    that violated the documented stay-cumulative contract."""
    from tests.core.helpers import echo_server, request_client

    cluster, sysprof = build_monitored_pair()
    cluster.node("server").spawn("srv", echo_server)
    cluster.node("client").spawn(
        "cli", request_client, "server", 8080, 200, 10000, 0.02
    )
    _advance(cluster, 1.5)
    before = sysprof.gpa.stats()["frames_received"]
    assert before > 0
    sysprof.gpa.kill()
    _advance(cluster, 0.3)
    sysprof.gpa.restart()
    # The fresh decoder starts at zero; the banked base keeps the
    # operator-facing counter monotone.
    assert sysprof.gpa.stats()["frames_received"] >= before
    _advance(cluster, 2.0)
    sysprof.flush()
    after = sysprof.gpa.stats()["frames_received"]
    assert after > before
    assert after == (
        sysprof.gpa.frames_received_base
        + sysprof.gpa.frame_decoder.frames_decoded
    )
