"""Zone GPAs: condensation, forwarding, restart, and isolation."""

import pytest

from repro.cluster import Cluster, build_spine_leaf
from repro.core import SysProf, SysProfConfig, ZoneGpa, ZoneSpec
from repro.core.channels import ChannelHub
from repro.workloads.synthetic import install_synthetic_load


def build_federated(seed=13, racks=2, per=2, eviction_interval=0.1,
                    forward_interval=0.25, stale_threshold=1.0,
                    synthetic=True, standbys=False):
    """Small spine/leaf cluster with one zone per rack and a root GPA.

    ``standbys=True`` arranges the zones in a ring (zone ``i+1`` covers
    for zone ``i``), so a dead zone GPA's members reparent to the next
    rack instead of escalating straight to the root.
    """
    cluster = Cluster(seed=seed)
    topology = build_spine_leaf(
        cluster, racks=racks, nodes_per_rack=per, mgmt_node="mgmt"
    )
    sysprof = SysProf(
        cluster,
        SysProfConfig(
            eviction_interval=eviction_interval,
            forward_interval=forward_interval,
            stale_threshold=stale_threshold,
        ),
    )
    specs = [
        ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                 members=list(rack.nodes))
        for rack in topology.racks
    ]
    if standbys and len(specs) > 1:
        for index, spec in enumerate(specs):
            spec.standby = specs[(index + 1) % len(specs)].name
    sysprof.install(zones=specs, gpa_node="mgmt")
    if synthetic:
        install_synthetic_load(sysprof, samples_per_window=8)
    sysprof.start()
    return cluster, sysprof


def test_zone_condenses_member_frames_for_root():
    cluster, sysprof = build_federated()
    cluster.run(until=2.0)
    zone = sysprof.federation.zone("r0")
    # Members' frames terminated at the zone, not the root.
    assert zone.records_received > 0
    assert sorted(zone.store.node_stats) == ["r0n0", "r0n1"]
    assert zone.forwards > 0
    assert zone.rows_forwarded > 0
    gpa = sysprof.gpa
    # The root sees only zone pseudo-nodes, each with merged sketches.
    assert sorted(gpa.node_stats) == ["zone:r0", "zone:r1"]
    assert gpa.decode_errors == 0
    merged = gpa.sketches.merged(request_class="rpc", metric="latency")
    assert merged.count > 0
    nodes = {key[0] for key in gpa.sketches.series}
    assert nodes == {"zone:r0", "zone:r1"}
    # Condensation: far fewer rows reach the root than entered the zones.
    zone_in = sum(z.records_received for z in sysprof.federation.all_zones())
    assert gpa.records_received < zone_in
    assert not gpa.stale_nodes(cluster.sim.now)


def test_zone_summary_rollup_is_count_weighted():
    cluster, sysprof = build_federated()
    cluster.run(until=2.0)
    gpa = sysprof.gpa
    rows = [r for r in gpa.class_summaries if r["node"] == "zone:r0"]
    assert rows
    zone = sysprof.federation.zone("r0")
    member_rows = [r for r in zone.class_summaries if r["node"].startswith("r0")]
    member_total = sum(r["count"] for r in member_rows)
    root_total = sum(r["count"] for r in rows)
    # The root trails the zone by at most the pending (unforwarded) window.
    assert 0 < root_total <= member_total
    pending = sum(
        acc["count"] for acc in zone._pending_classes.values()
    )
    assert root_total + pending == member_total
    # Count-weighted latency roll-up: the merged mean lies inside the
    # members' span.
    means = [r["mean_latency"] for r in member_rows]
    merged_mean = (
        sum(r["count"] * r["mean_latency"] for r in rows) / root_total
    )
    assert min(means) <= merged_mean <= max(means)


def test_zone_restart_resends_descriptors_both_tiers():
    """Satellite regression: killing a zone GPA must not wedge either
    side — member daemons re-send format descriptors to the reborn zone
    (its ingest registry died with it), and the zone's own publisher
    re-sends descriptors to the root on its fresh connection."""
    cluster, sysprof = build_federated()
    cluster.run(until=1.5)
    zone = sysprof.federation.zone("r0")
    gpa = sysprof.gpa
    daemon = sysprof.monitor("r0n0").daemon
    daemon_sends_before = daemon.format_sends
    zone_sends_before = zone.publisher.stats()["format_sends"]
    root_records_before = gpa.records_received
    zone.kill("test")
    cluster.run(until=2.5)
    zone.restart()
    cluster.run(until=5.0)
    assert zone.restarts == 1
    # Members reconnected and re-sent descriptors; the fresh registry
    # decoded everything.
    assert daemon.format_sends > daemon_sends_before
    assert zone.decode_errors == 0
    assert sorted(zone.store.node_stats) == ["r0n0", "r0n1"]
    # The zone's upward publisher re-sent descriptors too, and the root
    # kept decoding its rows.
    assert zone.publisher.stats()["format_sends"] > zone_sends_before
    assert gpa.decode_errors == 0
    assert gpa.records_received > root_records_before
    assert not gpa.stale_nodes(cluster.sim.now)


def test_zone_kill_degrades_only_that_zone():
    cluster, sysprof = build_federated()
    cluster.run(until=2.0)
    sysprof.federation.zone("r0").kill("test")
    cluster.run(until=4.5)
    stale = sysprof.gpa.stale_nodes(cluster.sim.now)
    assert set(stale) == {"zone:r0"}
    # The dead zone's own members are invisible to the root either way;
    # the surviving zone keeps reporting.
    assert "zone:r1" not in stale


def test_nested_zones_forward_through_parent():
    cluster = Cluster(seed=9)
    for name in ("leafa", "leafb", "mid", "top", "mgmt"):
        cluster.add_node(name)
    sysprof = SysProf(
        cluster,
        SysProfConfig(eviction_interval=0.1, forward_interval=0.2),
    )
    spec = ZoneSpec(
        name="super", gpa_node="top", members=[],
        children=[ZoneSpec(name="inner", gpa_node="mid",
                           members=["leafa", "leafb"])],
    )
    sysprof.install(zones=[spec], gpa_node="mgmt")
    install_synthetic_load(sysprof, samples_per_window=4)
    sysprof.start()
    cluster.run(until=2.0)
    inner = sysprof.federation.zone("inner")
    top = sysprof.federation.zone("super")
    assert sorted(inner.store.node_stats) == ["leafa", "leafb"]
    assert sorted(top.store.node_stats) == ["zone:inner"]
    assert sorted(sysprof.gpa.node_stats) == ["zone:super"]
    assert sysprof.gpa.decode_errors == 0
    assert top.children == ["inner"]
    assert sysprof.federation.root_candidates() == ["zone:super"]
    assert sysprof.federation.top_level() == [top]


def test_federation_tree_lookups():
    _, sysprof = build_federated()
    federation = sysprof.federation
    assert sorted(z.zone for z in federation.all_zones()) == ["r0", "r1"]
    assert sorted(federation.root_candidates()) == ["zone:r0", "zone:r1"]
    assert federation.locate_member("r1n1").zone == "r1"
    assert federation.locate_member("mgmt") is None
    with pytest.raises(ValueError):
        federation.add(federation.zone("r0"))


def test_zone_name_must_fit_str16():
    cluster = Cluster(seed=1)
    cluster.add_node("a")
    hub = ChannelHub()
    with pytest.raises(ValueError):
        ZoneGpa("a-very-long-zone-name", cluster.node("a"), hub)


def test_zone_stats_expose_tier_counters():
    cluster, sysprof = build_federated()
    cluster.run(until=2.0)
    stats = sysprof.federation.zone("r0").stats()
    for key in ("records_received", "ingress_bytes", "sketch_merges",
                "forwards", "rows_forwarded", "bytes_published",
                "format_sends", "restarts"):
        assert key in stats
    assert stats["ingress_bytes"] > 0
    assert stats["bytes_published"] > 0
    # The root tier reports its ingress too (the bench's numerator).
    assert sysprof.gpa.stats()["ingress_bytes"] > 0
