"""Kprof: subscriptions, costs, predicates, masking."""

import pytest

from repro.cluster import Cluster, NodeClock
from repro.core.kprof import (
    Kprof,
    all_of,
    exclude_port_range,
    field_predicate,
    pid_predicate,
)
from repro.ossim import tracepoints as tp


@pytest.fixture
def node():
    return Cluster(seed=10).add_node("n1", clock=NodeClock(offset=2.0))


@pytest.fixture
def kprof(node):
    return Kprof(node.kernel).attach()


def test_attach_installs_tracepoints(node, kprof):
    assert node.kernel.tracepoints is kprof
    kprof.detach()
    assert node.kernel.tracepoints is not kprof


def test_disabled_event_costs_nothing(kprof):
    assert not kprof.enabled(tp.SYSCALL_ENTRY)
    assert kprof.cost(tp.SYSCALL_ENTRY) == kprof.costs.probe_disabled


def test_subscription_enables_and_costs(kprof):
    kprof.subscribe([tp.SYSCALL_ENTRY], lambda e: None, cost=1e-6)
    assert kprof.enabled(tp.SYSCALL_ENTRY)
    assert kprof.cost(tp.SYSCALL_ENTRY) == pytest.approx(
        kprof.costs.probe_fire + 1e-6
    )


def test_cost_sums_multiple_subscribers(kprof):
    kprof.subscribe([tp.SYSCALL_ENTRY], lambda e: None, cost=1e-6)
    kprof.subscribe([tp.SYSCALL_ENTRY], lambda e: None, cost=2e-6)
    assert kprof.cost(tp.SYSCALL_ENTRY) == pytest.approx(
        kprof.costs.probe_fire + 3e-6
    )


def test_fire_delivers_event_with_local_timestamp(node, kprof):
    events = []
    kprof.subscribe([tp.SYSCALL_ENTRY], events.append)
    node.sim.run(until=1.0)
    kprof.fire(tp.SYSCALL_ENTRY, pid=7, call="read")
    assert len(events) == 1
    event = events[0]
    assert event.etype == tp.SYSCALL_ENTRY
    assert event.node == "n1"
    assert event["pid"] == 7
    assert event.ts == pytest.approx(3.0)  # sim 1.0 + offset 2.0


def test_fire_with_explicit_sim_ts(node, kprof):
    events = []
    kprof.subscribe([tp.NET_RX_DRIVER], events.append)
    kprof.fire(tp.NET_RX_DRIVER, sim_ts=5.0)
    assert events[0].ts == pytest.approx(7.0)


def test_unsubscribe_disables(kprof):
    sub = kprof.subscribe([tp.SYSCALL_ENTRY], lambda e: None)
    kprof.unsubscribe(sub)
    assert not kprof.enabled(tp.SYSCALL_ENTRY)


def test_event_class_expansion(kprof):
    kprof.subscribe(["network"], lambda e: None)
    for etype in tp.NETWORK_EVENTS:
        assert kprof.enabled(etype)
    assert not kprof.enabled(tp.FS_READ)


def test_mask_overrides_subscription(kprof):
    events = []
    kprof.subscribe([tp.SYSCALL_ENTRY], events.append)
    kprof.mask([tp.SYSCALL_ENTRY])
    assert not kprof.enabled(tp.SYSCALL_ENTRY)
    assert kprof.cost(tp.SYSCALL_ENTRY) == kprof.costs.probe_disabled
    kprof.fire(tp.SYSCALL_ENTRY, pid=1)
    assert events == []
    kprof.unmask([tp.SYSCALL_ENTRY])
    kprof.fire(tp.SYSCALL_ENTRY, pid=1)
    assert len(events) == 1


def test_predicate_suppresses_delivery(kprof):
    events = []
    kprof.subscribe(
        [tp.SYSCALL_ENTRY], events.append, predicate=pid_predicate([42])
    )
    kprof.fire(tp.SYSCALL_ENTRY, pid=41)
    kprof.fire(tp.SYSCALL_ENTRY, pid=42)
    assert [event["pid"] for event in events] == [42]
    assert kprof.events_suppressed == 1


def test_exclude_port_range_predicate():
    keep = exclude_port_range(9100, 9199)

    class FakeEvent(dict):
        def get(self, *args):
            return dict.get(self, *args)

    assert keep(FakeEvent(src_port=80, dst_port=443))
    assert not keep(FakeEvent(src_port=9150, dst_port=80))
    assert not keep(FakeEvent(src_port=80, dst_port=9100))


def test_field_predicate_and_conjunction(kprof):
    events = []
    predicate = all_of(
        field_predicate("call", ["read"]), pid_predicate([1, 2])
    )
    kprof.subscribe([tp.SYSCALL_ENTRY], events.append, predicate=predicate)
    kprof.fire(tp.SYSCALL_ENTRY, pid=1, call="read")
    kprof.fire(tp.SYSCALL_ENTRY, pid=1, call="write")
    kprof.fire(tp.SYSCALL_ENTRY, pid=3, call="read")
    assert len(events) == 1


def test_stats_shape(kprof):
    kprof.subscribe([tp.SYSCALL_ENTRY], lambda e: None)
    kprof.fire(tp.SYSCALL_ENTRY, pid=1)
    stats = kprof.stats()
    assert stats["fired"] == {tp.SYSCALL_ENTRY: 1}
    assert tp.SYSCALL_ENTRY in stats["subscribed_types"]


def test_fired_equals_delivered_plus_suppressed(kprof):
    """Per-attempt accounting: every (event, subscription) attempt is
    either delivered or suppressed, never double- or un-counted."""
    seen = []
    kprof.subscribe([tp.SYSCALL_ENTRY], seen.append)
    kprof.subscribe(
        [tp.SYSCALL_ENTRY], seen.append, predicate=pid_predicate([42])
    )
    kprof.fire(tp.SYSCALL_ENTRY, pid=41)  # one delivered, one suppressed
    kprof.fire(tp.SYSCALL_ENTRY, pid=42)  # two delivered
    stats = kprof.stats()
    assert stats["fired"] == {tp.SYSCALL_ENTRY: 4}
    assert stats["delivered"] == 3
    assert stats["suppressed"] == 1
    assert len(seen) == 3


def test_all_predicates_reject_without_building_event(kprof, monkeypatch):
    """Fields-only predicates reject on the raw payload dict; when every
    subscriber rejects, no MonEvent (or clock read) is ever built."""
    kprof.subscribe(
        [tp.SYSCALL_ENTRY], lambda e: None, predicate=pid_predicate([42])
    )

    def boom(*_args):
        raise AssertionError("MonEvent built for a fully-suppressed fire")

    monkeypatch.setattr(kprof, "_make_event", boom)
    kprof.fire(tp.SYSCALL_ENTRY, pid=7)
    assert kprof.events_suppressed == 1
    assert kprof.events_delivered == 0


def test_opaque_predicate_still_gets_monevent(kprof):
    """Hand-written predicates (no fields_only flag) see the MonEvent."""
    seen = []

    def wants_node(event):
        return event.node == "n1"

    kprof.subscribe([tp.SYSCALL_ENTRY], seen.append, predicate=wants_node)
    kprof.fire(tp.SYSCALL_ENTRY, pid=7)
    assert len(seen) == 1


def test_helper_predicates_are_fields_only():
    assert pid_predicate([1]).fields_only
    assert exclude_port_range(1, 2).fields_only
    assert field_predicate("call", ["read"]).fields_only
    assert all_of(pid_predicate([1]), field_predicate("x", [1])).fields_only
    assert not all_of(pid_predicate([1]), lambda e: True).fields_only


def test_unsubscribe_during_fire_keeps_snapshot(kprof):
    """Copy-on-write: mutating subscriptions mid-delivery affects the
    *next* fire, not the one in flight."""
    seen = []
    sub_b = kprof.subscribe([tp.SYSCALL_ENTRY], lambda e: seen.append("b"))

    def kill_b(_event):
        seen.append("a")
        kprof.unsubscribe(sub_b)

    kprof.subscribe([tp.SYSCALL_ENTRY], kill_b)
    # NB: kill_b was subscribed after sub_b, so "b" delivers first; the
    # second event must not reach b at all.
    kprof.fire(tp.SYSCALL_ENTRY, pid=1)
    kprof.fire(tp.SYSCALL_ENTRY, pid=1)
    assert seen == ["b", "a", "a"]
    kprof.stats()  # invariant still holds after mid-fire mutation
