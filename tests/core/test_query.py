"""Remote GPA queries over the simulated network."""

import pytest

from repro.core.query import GpaQueryClient, GpaQueryError, remote_query
from tests.core.helpers import build_monitored_pair, drive_traffic


def _run_query_task(cluster, fn):
    task = cluster.node("client").spawn("querier", fn)
    cluster.run(until=cluster.sim.now + 2.0)
    assert task.proc.triggered
    return task.exit_value


def test_remote_node_summary():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)

    def querier(ctx):
        result = yield from remote_query(ctx, "mgmt", "node_summary",
                                         node="server")
        return result

    summary = _run_query_task(cluster, querier)
    assert summary["count"] == 6
    assert summary["mean_user_time"] == pytest.approx(0.002, rel=0.1)
    assert sysprof.gpa.queries_served == 1


def test_remote_interactions_with_limit():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=8)

    def querier(ctx):
        result = yield from remote_query(
            ctx, "mgmt", "interactions", node="server", limit=3
        )
        return result

    records = _run_query_task(cluster, querier)
    assert len(records) == 3
    assert all(record["node"] == "server" for record in records)


def test_remote_server_load_and_stats():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=4, run_until=2.0)

    def querier(ctx):
        client = GpaQueryClient(ctx, "mgmt")
        yield from client.connect()
        load = yield from client.query("server_load", node="server")
        stats = yield from client.query("stats")
        yield from client.close()
        return load, stats, client.queries_sent

    load, stats, sent = _run_query_task(cluster, querier)
    assert sent == 2
    assert load["cpu_utilization"] >= 0
    assert stats["interactions"] == 4


def test_unknown_query_kind_returns_error():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=2)

    def querier(ctx):
        try:
            yield from remote_query(ctx, "mgmt", "drop_tables")
        except GpaQueryError as error:
            return str(error)

    error = _run_query_task(cluster, querier)
    assert "unknown query kind" in error


def test_missing_param_returns_error_not_crash():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=2)

    def querier(ctx):
        try:
            yield from remote_query(ctx, "mgmt", "node_summary")  # no node
        except GpaQueryError as error:
            return "handled"

    assert _run_query_task(cluster, querier) == "handled"
    # GPA kept running: a follow-up query succeeds.
    def querier2(ctx):
        result = yield from remote_query(ctx, "mgmt", "stats")
        return result

    assert _run_query_task(cluster, querier2)["interactions"] == 2


def test_unconnected_client_rejected():
    cluster, sysprof = build_monitored_pair()

    def querier(ctx):
        client = GpaQueryClient(ctx, "mgmt")
        try:
            yield from client.query("stats")
        except GpaQueryError:
            return "rejected"

    assert _run_query_task(cluster, querier) == "rejected"
