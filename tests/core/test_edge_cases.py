"""Edge cases across the toolkit surface."""

import pytest

from repro.cluster import Cluster
from repro.core.encoding import FormatRegistry, decode_records, encode_records
from repro.core.kprof import Kprof
from repro.ossim.kernel import Kernel
from repro.ossim.costs import DEFAULT_COSTS
from repro.sim import SimError, Simulator


def test_empty_format_roundtrip():
    registry = FormatRegistry()
    fmt = registry.register("empty", ())
    blob = encode_records(fmt, [])
    decoded_fmt, records = decode_records(registry, blob)
    assert decoded_fmt is fmt and records == []


def test_format_descriptor_of_empty_format_adoptable():
    registry = FormatRegistry()
    fmt = registry.register("empty", ())
    fresh = FormatRegistry()
    adopted = fresh.adopt(fmt.describe())
    assert adopted.fields == ()


def test_kernel_without_nic_rejects_ip():
    kernel = Kernel(Simulator(), "bare", DEFAULT_COSTS)
    with pytest.raises(SimError, match="no NIC"):
        kernel.ip


def test_kernel_one_way_latency_fallback():
    kernel = Kernel(Simulator(), "bare", DEFAULT_COSTS)
    assert kernel.one_way_latency(kernel) == pytest.approx(50e-6)


def test_kprof_detach_restores_null():
    node = Cluster(seed=99).add_node("n")
    kprof = Kprof(node.kernel).attach()
    kprof.subscribe(["syscall.entry"], lambda e: None)
    kprof.detach()
    assert node.kernel.tracepoints.cost("syscall.entry") == 0.0
    node.kernel.tracepoints.fire("syscall.entry", pid=1)  # no-op, no crash


def test_cost_cache_invalidation_on_unsubscribe():
    node = Cluster(seed=99).add_node("n")
    kprof = Kprof(node.kernel).attach()
    sub = kprof.subscribe(["syscall.entry"], lambda e: None, cost=5e-6)
    first = kprof.cost("syscall.entry")
    kprof.unsubscribe(sub)
    assert kprof.cost("syscall.entry") < first


def test_interaction_record_repr_and_message_repr():
    from repro.core.interactions import InteractionRecord, MessageStats

    request = MessageStats(("a", 1), ("b", 2), 1.0)
    request.extend(1.1, 100)
    response = MessageStats(("b", 2), ("a", 1), 2.0)
    response.extend(2.1, 50)
    record = InteractionRecord("n", request, response)
    assert "Interaction" in repr(record)
    assert "100B" in repr(request)


def test_daemon_resends_format_per_endpoint_once():
    from tests.core.helpers import build_monitored_pair, drive_traffic

    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=12)
    daemon = sysprof.monitor("server").daemon
    # interaction + nodestats formats to a single endpoint: exactly one
    # descriptor each, on one tracked subscriber socket.
    assert daemon.format_sends == 2
    ((_sock, sent_names),) = daemon._formats_sent.values()
    assert sent_names == {"sysprof.interaction", "sysprof.nodestats"}
    assert sysprof.gpa.decode_errors == 0


def test_clock_identity_for_default_nodes():
    node = Cluster(seed=99).add_node("n")
    node.sim.run(until=1.5)
    assert node.local_time() == pytest.approx(1.5)


def test_task_stat_line_format():
    node = Cluster(seed=99).add_node("n")

    def worker(ctx):
        yield from ctx.compute(0.01)

    task = node.spawn("webby", worker)
    node.sim.run()
    line = task.stat_line(node.sim.now)
    assert line.startswith("{} (webby)".format(task.pid))
    assert "utime=0.01" in line
