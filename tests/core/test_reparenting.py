"""ParentLink reparenting plus the forward-path data-loss regressions."""

import pytest

from repro.cluster import Cluster
from repro.core import ParentLink, ZoneSpec
from repro.core.channels import ChannelHub
from repro.core.federation import ROOT_PREFIX, zone_channel_prefix
from repro.core.publisher import ChannelPublisher
from repro.observability.sketches import QuantileSketch
from tests.core.test_federation import build_federated


def _drain(gen):
    """Run a ParentLink.check() generator to completion."""
    if gen is None:
        return
    for _ in gen:
        pass


class _Ctx:
    """Minimal publish-cycle context for driving check() off-cluster."""

    def __init__(self, now):
        self.now = now


def _link(loss_failures=3, lease_timeout=1.0, standby="r1"):
    cluster = Cluster(seed=3)
    cluster.add_node("pub")
    hub = ChannelHub()
    publisher = ChannelPublisher(
        cluster.node("pub"), hub, channel_prefix=zone_channel_prefix("r0")
    )
    events = []
    link = ParentLink(
        "pub", publisher, hub,
        primary_prefix=zone_channel_prefix("r0"),
        standby_prefix=zone_channel_prefix(standby) if standby else None,
        standby_zone=standby,
        loss_failures=loss_failures, lease_timeout=lease_timeout,
        on_reparent=lambda zone: events.append(("reparent", zone)),
        on_return=lambda: events.append(("return", None)),
    )
    publisher.parent_link = link
    return link, publisher, events


def test_parent_link_reparents_after_retry_budget():
    link, publisher, events = _link(loss_failures=3)
    link.note_failure(0.1)
    link.note_failure(0.2)
    assert link.state == "primary"
    assert publisher.channel_prefix == zone_channel_prefix("r0")
    link.note_failure(0.3)
    assert link.state == "failover"
    assert publisher.channel_prefix == zone_channel_prefix("r1")
    assert events == [("reparent", "r1")]
    assert link.stats()["failed_over"] == 1
    assert link.reparents == 1


def test_parent_link_escalates_to_root_when_standby_dies():
    link, publisher, events = _link(loss_failures=2)
    for at in (0.1, 0.2):
        link.note_failure(at)
    assert publisher.channel_prefix == zone_channel_prefix("r1")
    # The standby is dead too: the next budget exhaustion climbs the
    # ladder to the root prefix instead of wrapping around.
    for at in (0.3, 0.4):
        link.note_failure(at)
    assert publisher.channel_prefix == ROOT_PREFIX
    assert link.escalations == 1
    assert events == [("reparent", "r1"), ("reparent", None)]
    # No further rung: extra failures stay on the root.
    for at in (0.5, 0.6):
        link.note_failure(at)
    assert publisher.channel_prefix == ROOT_PREFIX
    assert link.escalations == 1


def test_parent_link_lease_timeout_fires_before_retry_budget():
    link, publisher, _ = _link(loss_failures=50, lease_timeout=0.5)
    link.note_failure(1.0)
    _drain(link.check(_Ctx(1.2)))
    assert link.state == "primary"
    _drain(link.check(_Ctx(1.6)))
    assert link.state == "failover"
    assert publisher.channel_prefix == zone_channel_prefix("r1")
    assert link.events[0]["reason"] == "lease-timeout"


def test_parent_link_success_resets_loss_state():
    link, publisher, _ = _link(loss_failures=3)
    link.note_failure(0.1)
    link.note_failure(0.2)
    link.note_success(0.3)
    # A renewed lease disarms the timeout however late the next check is.
    _drain(link.check(_Ctx(10.0)))
    assert link.state == "primary"
    # The consecutive-failure budget restarted from zero too.
    link.note_failure(10.1)
    link.note_failure(10.2)
    assert link.state == "primary"
    assert publisher.channel_prefix == zone_channel_prefix("r0")


def test_top_level_link_enters_probe_only_failover():
    """A zone whose parent *is* the root has no fallback rung — the link
    still fails over (probe-only) so the abandoned endpoint is revived
    when the root comes back, instead of staying black forever."""
    cluster = Cluster(seed=3)
    cluster.add_node("pub")
    hub = ChannelHub()
    publisher = ChannelPublisher(cluster.node("pub"), hub,
                                 channel_prefix=ROOT_PREFIX)
    link = ParentLink("pub", publisher, hub, primary_prefix=ROOT_PREFIX,
                      loss_failures=2)
    for at in (0.1, 0.2):
        link.note_failure(at)
    assert link.state == "failover"
    assert publisher.channel_prefix == ROOT_PREFIX
    assert link.events[0]["event"] == "probe-only"


def test_zone_spec_optional_fields_default_none():
    """Regression: ``forward_interval`` is Optional[float] (it used to be
    annotated as a bare float with a None default)."""
    spec = ZoneSpec(name="a", gpa_node="b")
    assert spec.forward_interval is None
    assert spec.standby is None
    fields = ZoneSpec.__dataclass_fields__
    assert "Optional" in str(fields["forward_interval"].type)
    assert "Optional" in str(fields["standby"].type)


def test_retain_remerges_undelivered_windows():
    """Bugfix regression: a failed upward publish re-merges the detached
    rollup into the (possibly refilled) pending state — counts add,
    windows extend, sketches merge."""
    cluster, sysprof = build_federated(synthetic=False)
    zone = sysprof.federation.zone("r0")

    def summary(count, start, end):
        return {"count": count, "latency": count * 2.0, "kernel": 0.0,
                "user": 0.0, "wait": 0.0, "bytes": count * 10,
                "start": start, "end": end}

    zone._pending_classes = {"rpc": summary(3, 1.0, 1.5)}
    zone._retain("sysprof.class_summary", {"rpc": summary(5, 0.2, 0.9),
                                           "web": summary(2, 0.5, 0.6)})
    assert zone._pending_classes["rpc"]["count"] == 8
    assert zone._pending_classes["rpc"]["latency"] == 16.0
    assert zone._pending_classes["rpc"]["start"] == 0.2
    assert zone._pending_classes["rpc"]["end"] == 1.5
    assert zone._pending_classes["web"]["count"] == 2

    fresh = QuantileSketch()
    fresh.add(0.001)
    held = QuantileSketch()
    held.add(0.002)
    held.add(0.003)
    zone._pending_sketches = {("rpc", "latency"): [fresh, 1.0, 1.5]}
    zone._retain("sysprof.sketch", {("rpc", "latency"): [held, 0.2, 0.9],
                                    ("web", "latency"): [held, 0.1, 0.4]})
    merged = zone._pending_sketches[("rpc", "latency")]
    assert merged[0].count == 3
    assert merged[1:] == [0.2, 1.5]
    assert zone._pending_sketches[("web", "latency")][0].count == 2


def test_dead_member_leaves_heartbeat_sums():
    """Bugfix regression: a crashed member's final nodestats record used
    to inflate the zone heartbeat's summed resource fields forever."""
    cluster, sysprof = build_federated(stale_threshold=0.5)
    cluster.run(until=1.0)
    zone = sysprof.federation.zone("r0")
    assert set(zone._member_last) == {"r0n0", "r0n1"}
    sysprof.monitor("r0n0").daemon.kill("test")
    cluster.run(until=2.5)
    assert set(zone._member_last) == {"r0n1"}
    # The root's zone heartbeat dropped the dead member's cumulative CPU:
    # per-member cpu_busy only ever grows, so without eviction the summed
    # series is monotone — the eviction shows up as a dip.
    history = list(sysprof.gpa.node_stats["zone:r0"])
    assert any(
        later["cpu_busy"] < earlier["cpu_busy"]
        for earlier, later in zip(history, history[1:])
    )


def test_stop_flushes_pending_rollups():
    """Bugfix regression: the forwarder only observed ``_stopped`` after
    its sleep, so rows condensed since the last interval silently died
    with a clean shutdown.  stop() now flushes them once."""
    cluster, sysprof = build_federated()
    cluster.run(until=1.62)  # mid-interval: pending refilled, not forwarded
    zone = sysprof.federation.zone("r0")
    assert zone._pending_classes, "test needs a non-empty pending window"
    # Stop members and zones at the same instant: the members emit no
    # further windows, and the zone's stop() flushes what it holds.
    for monitor in sysprof.monitors.values():
        monitor.daemon.stop()
    sysprof.federation.stop()
    cluster.run(until=2.2)
    member_total = sum(r["count"] for r in zone.class_summaries)
    root_total = sum(
        r["count"] for r in sysprof.gpa.class_summaries
        if r["node"] == "zone:r0"
    )
    assert not zone._pending_classes
    assert root_total == member_total


def test_forward_failures_counted_only_with_live_subscribers():
    """forward_failures means "a parent existed and the window missed
    it" — a fault-free run must never count one."""
    cluster, sysprof = build_federated()
    cluster.run(until=2.0)
    for zone in sysprof.federation.all_zones():
        stats = zone.stats()
        assert stats["forward_failures"] == 0
        assert "parent_link" in stats
        assert stats["parent_link"]["failed_over"] == 0


def test_reparent_disabled_config_installs_no_links():
    from repro.cluster import build_spine_leaf
    from repro.core import SysProf, SysProfConfig

    cluster = Cluster(seed=13)
    topology = build_spine_leaf(cluster, racks=2, nodes_per_rack=2,
                                mgmt_node="mgmt")
    sysprof = SysProf(cluster, SysProfConfig(reparent=False))
    specs = [ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                      members=list(rack.nodes)) for rack in topology.racks]
    sysprof.install(zones=specs, gpa_node="mgmt")
    assert sysprof.monitor("r0n0").daemon.parent_link is None
    assert sysprof.federation.zone("r0").parent_link is None


def test_unknown_standby_zone_rejected_at_install():
    from repro.cluster import build_spine_leaf
    from repro.core import SysProf, SysProfConfig

    cluster = Cluster(seed=13)
    topology = build_spine_leaf(cluster, racks=2, nodes_per_rack=2,
                                mgmt_node="mgmt")
    sysprof = SysProf(cluster, SysProfConfig())
    specs = [ZoneSpec(name=rack.name, gpa_node=rack.gpa_node,
                      members=list(rack.nodes)) for rack in topology.racks]
    specs[0].standby = "no-such-zone"
    with pytest.raises(ValueError):
        sysprof.install(zones=specs, gpa_node="mgmt")
