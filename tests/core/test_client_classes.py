"""Client-class accounting: per-customer aggregation at the LPA."""


from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.core.controller import (
    classify_by_client,
    classify_by_client_group,
    classify_by_kind,
)


def _multi_client_cluster():
    cluster = Cluster(seed=73)
    gold = cluster.add_node("gold-client")
    bronze = cluster.add_node("bronze-client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(
        cluster, SysProfConfig(eviction_interval=0.05, granularity="class")
    )
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()

    def server(ctx):
        lsock = yield from ctx.listen(8080)
        while True:
            sock = yield from ctx.accept(lsock)
            ctx.spawn("h", handler, sock)

    def handler(ctx, sock):
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            yield from ctx.compute(0.001)
            yield from ctx.send_message(sock, 500, kind="reply")

    def client(ctx, count):
        sock = yield from ctx.connect("server", 8080)
        for _ in range(count):
            yield from ctx.send_message(sock, 2000, kind="api")
            yield from ctx.recv_message(sock)
            yield from ctx.sleep(0.01)
        yield from ctx.close(sock)

    cluster.node("server").spawn("srv", server)
    gold.spawn("gold", client, 6)
    bronze.spawn("bronze", client, 3)
    return cluster, sysprof, gold, bronze


def test_classify_by_client_splits_per_ip():
    cluster, sysprof, gold, bronze = _multi_client_cluster()
    sysprof.controller.set_classifier(classify_by_client, node="server")
    cluster.run(until=2.0)
    sysprof.flush()
    counts = {}
    for summary in sysprof.gpa.class_summaries:
        counts[summary["request_class"]] = (
            counts.get(summary["request_class"], 0) + summary["count"]
        )
    assert counts == {
        "client:{}".format(gold.ip): 6,
        "client:{}".format(bronze.ip): 3,
    }


def test_classify_by_group_names_tiers():
    cluster, sysprof, gold, bronze = _multi_client_cluster()
    sysprof.controller.set_classifier(
        classify_by_client_group({"gold": [gold.ip]}, default="best-effort"),
        node="server",
    )
    cluster.run(until=2.0)
    sysprof.flush()
    counts = {}
    for summary in sysprof.gpa.class_summaries:
        counts[summary["request_class"]] = (
            counts.get(summary["request_class"], 0) + summary["count"]
        )
    assert counts == {"gold": 6, "best-effort": 3}


def test_classify_by_kind_default():
    cluster, sysprof, gold, bronze = _multi_client_cluster()
    sysprof.controller.set_classifier(classify_by_kind, node="server")
    cluster.run(until=2.0)
    sysprof.flush()
    classes = {s["request_class"] for s in sysprof.gpa.class_summaries}
    assert classes == {"api"}
