"""Custom Performance Analyzers: E-Code loaded into the kernel."""

import pytest

from repro.core.cpa import CustomAnalyzer
from repro.core.ecode import ECodeError
from repro.ossim import tracepoints as tp
from tests.core.helpers import build_monitored_pair, drive_traffic

SYSCALL_COUNTER = """
int entries = 0;
int reads = 0;
void handle(event e) {
    entries += 1;
    if (e.call == "recv") { reads += 1; }
}
double metric_entries() { return entries; }
double metric_reads() { return reads; }
"""


def test_cpa_installed_via_controller_counts_events():
    cluster, sysprof = build_monitored_pair()
    cpa = sysprof.controller.install_cpa(
        "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY], name="sys-counter"
    )
    drive_traffic(cluster, sysprof, count=5)
    assert cpa.events_handled > 0
    assert cpa.read_global("entries") == cpa.events_handled
    assert 0 < cpa.read_global("reads") <= cpa.read_global("entries")


def test_cpa_metrics_reach_gpa():
    cluster, sysprof = build_monitored_pair()
    sysprof.controller.install_cpa(
        "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY], name="sys-counter"
    )
    drive_traffic(cluster, sysprof, count=5)
    metrics = list(sysprof.gpa.cpa_metrics)
    assert metrics
    keys = {record["key"] for record in metrics}
    assert keys == {"entries", "reads"}
    assert all(record["analyzer"] == "sys-counter" for record in metrics)


def test_cpa_requires_handle_function():
    cluster, sysprof = build_monitored_pair()
    with pytest.raises(ECodeError, match="handle"):
        sysprof.controller.install_cpa(
            "server", "int x = 1;", [tp.SYSCALL_ENTRY], name="broken"
        )


def test_buggy_cpa_is_isolated():
    """A crashing analyzer must not take the kernel (or the run) down."""
    cluster, sysprof = build_monitored_pair()
    cpa = sysprof.controller.install_cpa(
        "server",
        "void handle(event e) { int x = 1 / 0; }",
        [tp.SYSCALL_ENTRY],
        name="crasher",
    )
    drive_traffic(cluster, sysprof, count=3)
    assert cpa.errors > 0
    assert cpa.events_handled == 0
    # The rest of the toolkit kept working.
    assert sysprof.lpa("server").tracker.interactions_emitted == 3


def test_duplicate_cpa_name_rejected():
    cluster, sysprof = build_monitored_pair()
    sysprof.controller.install_cpa(
        "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY], name="dup"
    )
    with pytest.raises(ValueError, match="already installed"):
        sysprof.controller.install_cpa(
            "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY], name="dup"
        )


def test_uninstall_stops_delivery():
    cluster, sysprof = build_monitored_pair()
    cpa = sysprof.controller.install_cpa(
        "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY], name="tmp"
    )
    drive_traffic(cluster, sysprof, count=3)
    handled = cpa.events_handled
    removed = sysprof.controller.uninstall_cpa("server", "tmp")
    assert removed is cpa
    from tests.core.helpers import request_client

    cluster.node("client").spawn("cli2", request_client, "server", 8080, 3)
    cluster.run(until=cluster.sim.now + 2.0)
    assert cpa.events_handled == handled


def test_cpa_charges_cpu(cluster=None):
    """An installed CPA inflates the monitored node's kernel time."""
    cluster_a, sysprof_a = build_monitored_pair(seed=17)
    drive_traffic(cluster_a, sysprof_a, count=8)
    baseline = cluster_a.node("server").kernel.cpu.busy_time

    cluster_b, sysprof_b = build_monitored_pair(seed=17)
    sysprof_b.controller.install_cpa(
        "server", SYSCALL_COUNTER, [tp.SYSCALL_ENTRY], name="sys-counter",
        cost=5e-6,
    )
    drive_traffic(cluster_b, sysprof_b, count=8)
    with_cpa = cluster_b.node("server").kernel.cpu.busy_time
    assert with_cpa > baseline


def test_direct_cpa_construction_and_stats():
    cluster, sysprof = build_monitored_pair()
    monitor = sysprof.monitor("server")
    cpa = CustomAnalyzer(
        monitor.kernel, monitor.kprof, SYSCALL_COUNTER, [tp.SYSCALL_EXIT],
        name="direct",
    )
    monitor.daemon.add_lpa(cpa)
    cpa.start()
    drive_traffic(cluster, sysprof, count=2)
    stats = cpa.stats()
    assert stats["handled"] > 0
    assert stats["errors"] == 0
    assert cpa.metrics()["entries"] == stats["handled"]
