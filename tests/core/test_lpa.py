"""Interaction LPA end-to-end on a monitored node."""

import pytest

from tests.core.helpers import build_monitored_pair, drive_traffic, request_client
from repro.core import SysProfConfig


def test_interactions_counted_and_windowed():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=10)
    lpa = sysprof.lpa("server")
    stats = lpa.stats()
    assert stats["interactions"] == 10
    assert stats["unpaired"] <= 1  # the FIN run may stay unpaired
    window = lpa.window_snapshot()
    assert len(window) == 10


def test_user_time_measures_server_compute():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    for record in sysprof.lpa("server").window_snapshot():
        assert record["user_time"] == pytest.approx(0.002, rel=0.05)
        assert record["server_name"] == "srv"
        assert record["req_bytes"] == 10000
        assert record["resp_bytes"] == 3000


def test_kernel_wait_positive_and_reasonable():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    for record in sysprof.lpa("server").window_snapshot():
        assert 0 < record["kernel_wait"] < 0.005
        assert record["kernel_time"] >= record["kernel_wait"]
        assert record["total_latency"] > record["user_time"]


def test_window_size_bounds_snapshot():
    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(eviction_interval=0.05, window_size=4)
    )
    drive_traffic(cluster, sysprof, count=10)
    assert len(sysprof.lpa("server").window_snapshot()) == 4


def test_class_granularity_emits_summaries():
    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(eviction_interval=0.05, granularity="class")
    )
    drive_traffic(cluster, sysprof, count=8)
    summaries = list(sysprof.gpa.class_summaries)
    assert summaries, "expected class summary records at the GPA"
    total = sum(summary["count"] for summary in summaries)
    assert total == 8
    assert all(summary["request_class"] == "query" for summary in summaries)
    assert all(summary["mean_latency"] > 0 for summary in summaries)
    # No per-interaction records in class mode.
    assert sysprof.gpa.query_interactions(node="server") == []


def test_records_reach_gpa_via_channels():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=10)
    records = sysprof.gpa.query_interactions(node="server")
    assert len(records) == 10
    assert sysprof.gpa.decode_errors == 0
    daemon_stats = sysprof.monitor("server").daemon.stats()
    assert daemon_stats["records_published"] >= 10
    assert daemon_stats["bytes_published"] > 0


def test_nodestats_sampled_periodically():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=5, run_until=2.0)
    load = sysprof.gpa.server_load("server")
    assert load is not None
    assert load["cpu_utilization"] >= 0.0
    assert "rx_backlog_bytes" in load


def test_self_traffic_excluded_from_interactions():
    """SysProf's own dissemination must not appear as interactions."""
    cluster, sysprof = build_monitored_pair(
        monitored=("server", "mgmt")
    )
    drive_traffic(cluster, sysprof, count=5)
    for node in ("server", "mgmt"):
        for record in sysprof.gpa.query_interactions(node=node):
            assert record["server_port"] < 9100 or record["server_port"] > 9199
            assert record["client_port"] < 9100 or record["client_port"] > 9199


def test_lpa_stop_halts_collection():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=5)
    before = sysprof.lpa("server").tracker.interactions_emitted
    sysprof.lpa("server").stop()
    cluster.node("client").spawn("cli2", request_client, "server", 8080, 5)
    cluster.run(until=cluster.sim.now + 2.0)
    assert sysprof.lpa("server").tracker.interactions_emitted == before
