"""Controller knobs and toolkit lifecycle."""

import pytest

from repro.cluster import Cluster
from repro.core import SysProf
from repro.ossim.tracepoints import NULL_TRACEPOINTS
from tests.core.helpers import build_monitored_pair, drive_traffic, request_client


def test_install_defaults_to_all_nodes():
    cluster = Cluster(seed=2)
    cluster.add_node("a")
    cluster.add_node("b")
    sysprof = SysProf(cluster).install()
    assert set(sysprof.monitors) == {"a", "b"}
    assert sysprof.gpa is None


def test_start_stop_restores_null_tracepoints():
    cluster, sysprof = build_monitored_pair()
    kernel = cluster.node("server").kernel
    assert kernel.tracepoints is sysprof.kprof("server")
    sysprof.stop()
    assert not sysprof.kprof("server").enabled("sock.enqueue")


def test_disable_enable_event_classes():
    cluster, sysprof = build_monitored_pair()
    sysprof.controller.disable_events(["network"], node="server")
    drive_traffic(cluster, sysprof, count=4)
    assert sysprof.lpa("server").tracker.interactions_emitted == 0
    sysprof.controller.enable_events(["network"], node="server")
    cluster.node("server").kernel  # still installed
    cluster.node("client").spawn("cli2", request_client, "server", 8080, 4)
    cluster.run(until=cluster.sim.now + 2.0)
    assert sysprof.lpa("server").tracker.interactions_emitted == 4


def test_masking_reduces_monitoring_cost():
    cluster_a, sysprof_a = build_monitored_pair(seed=31)
    drive_traffic(cluster_a, sysprof_a, count=10)
    full_cost = cluster_a.node("server").kernel.cpu.busy_time

    cluster_b, sysprof_b = build_monitored_pair(seed=31)
    sysprof_b.controller.disable_events(
        ["network", "scheduling", "syscall"], node="server"
    )
    drive_traffic(cluster_b, sysprof_b, count=10)
    masked_cost = cluster_b.node("server").kernel.cpu.busy_time
    assert masked_cost < full_cost


def test_set_buffer_capacity_and_window():
    cluster, sysprof = build_monitored_pair()
    sysprof.controller.set_buffer_capacity(8, node="server")
    sysprof.controller.set_window_size(2, node="server")
    drive_traffic(cluster, sysprof, count=6)
    assert sysprof.lpa("server").buffer.capacity == 8
    assert len(sysprof.lpa("server").window_snapshot()) == 2


def test_set_granularity_at_runtime():
    cluster, sysprof = build_monitored_pair()
    sysprof.controller.set_granularity("class")
    assert sysprof.lpa("server").granularity == "class"
    with pytest.raises(ValueError):
        sysprof.controller.set_granularity("bogus")


def test_set_eviction_interval():
    cluster, sysprof = build_monitored_pair()
    sysprof.controller.set_eviction_interval(0.5, node="server")
    assert sysprof.monitor("server").daemon.eviction_interval == 0.5


def test_controller_status_report():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=3)
    status = sysprof.controller.status()
    assert "server" in status
    assert "interaction-lpa" in status["server"]["lpas"]
    assert status["server"]["daemon"]["records_published"] >= 3


def test_local_window_query():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=3)
    window = sysprof.local_window("server")
    assert len(window) == 3


def test_unmonitored_kernel_has_null_tracepoints():
    cluster = Cluster(seed=2)
    node = cluster.add_node("plain")
    assert node.kernel.tracepoints is NULL_TRACEPOINTS


def test_double_start_is_idempotent():
    cluster, sysprof = build_monitored_pair()
    assert sysprof.start() is sysprof
