"""Message/interaction extraction from packet direction flips (paper §2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interactions import InteractionTracker

CLIENT = ("10.0.0.1", 5000)
SERVER = ("10.0.0.2", 80)
LOCAL_IP = "10.0.0.2"


def make_tracker(emitted):
    return InteractionTracker("server", LOCAL_IP, emitted.append)


def test_single_request_response_pair():
    emitted = []
    tracker = make_tracker(emitted)
    tracker.on_packet(CLIENT, SERVER, 1.0, 1000, kind="query")
    tracker.on_packet(CLIENT, SERVER, 1.1, 500, kind="query")
    tracker.on_packet(SERVER, CLIENT, 2.0, 200, kind="reply")
    tracker.flush()
    assert len(emitted) == 1
    record = emitted[0]
    assert record.request.packets == 2
    assert record.request.bytes == 1500
    assert record.response.packets == 1
    assert record.start_ts == 1.0
    assert record.end_ts == 2.0
    assert record.client == CLIENT
    assert record.server == SERVER
    assert record.request_class == "query"


def test_consecutive_interactions_emitted_online():
    """The next request's first packet closes the previous response."""
    emitted = []
    tracker = make_tracker(emitted)
    for index in range(3):
        base = float(index)
        tracker.on_packet(CLIENT, SERVER, base + 0.0, 100)
        tracker.on_packet(SERVER, CLIENT, base + 0.5, 200)
    # Two interactions complete online (the third response is still open).
    assert len(emitted) == 2
    tracker.flush()
    assert len(emitted) == 3


def test_message_without_reply_is_unpaired():
    emitted = []
    tracker = make_tracker(emitted)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)
    tracker.flush()
    assert emitted == []
    assert tracker.unpaired_messages == 1


def test_first_rx_and_deliver_timestamps():
    emitted = []
    tracker = make_tracker(emitted)
    tracker.note_rx_start(CLIENT, SERVER, 0.9)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)
    tracker.on_deliver(CLIENT, SERVER, 1.5)
    tracker.on_packet(SERVER, CLIENT, 2.0, 50)
    tracker.flush()
    record = emitted[0]
    assert record.request.first_rx_ts == 0.9
    assert record.request.deliver_ts == 1.5


def test_deliver_matches_fifo_across_interactions():
    emitted = []
    tracker = make_tracker(emitted)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)
    tracker.on_deliver(CLIENT, SERVER, 1.2)
    tracker.on_packet(SERVER, CLIENT, 1.5, 50)
    tracker.on_packet(CLIENT, SERVER, 2.0, 100)
    tracker.on_deliver(CLIENT, SERVER, 2.2)
    tracker.on_packet(SERVER, CLIENT, 2.5, 50)
    tracker.flush()
    assert [record.request.deliver_ts for record in emitted] == [1.2, 2.2]


def test_sampler_called_only_on_message_open():
    emitted = []
    tracker = make_tracker(emitted)
    calls = []
    sampler = lambda: calls.append(1) or {"utime": 0}  # noqa: E731
    tracker.on_packet(SERVER, CLIENT, 1.0, 100, sampler=sampler)
    tracker.on_packet(SERVER, CLIENT, 1.1, 100, sampler=sampler)
    assert len(calls) == 1


def test_flows_are_independent():
    emitted = []
    tracker = make_tracker(emitted)
    other_client = ("10.0.0.3", 6000)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)
    tracker.on_packet(other_client, SERVER, 1.1, 100)
    tracker.on_packet(SERVER, CLIENT, 2.0, 50)
    tracker.on_packet(SERVER, other_client, 2.1, 50)
    tracker.flush()
    assert len(emitted) == 2
    clients = sorted(record.client for record in emitted)
    assert clients == sorted([CLIENT, other_client])


def test_expire_idle_flushes_and_forgets():
    emitted = []
    tracker = make_tracker(emitted)
    tracker.idle_timeout = 1.0
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)
    tracker.on_packet(SERVER, CLIENT, 1.5, 50)
    expired = tracker.expire_idle(10.0)
    assert expired == 1
    assert len(emitted) == 1
    assert tracker.flows == {}


def test_total_latency_and_kernel_time_properties():
    emitted = []
    tracker = make_tracker(emitted)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)
    tracker.on_packet(SERVER, CLIENT, 3.5, 50)
    tracker.flush()
    record = emitted[0]
    assert record.total_latency == pytest.approx(2.5)
    record.kernel_wait, record.kernel_cpu = 0.5, 0.25
    assert record.kernel_time == pytest.approx(0.75)
    payload = record.as_dict()
    assert payload["client_ip"] == CLIENT[0]
    assert payload["total_latency"] == pytest.approx(2.5)


def test_as_row_aligns_with_interaction_format():
    """Pin ``as_row`` to INTERACTION_FORMAT field order: the daemon packs
    these rows positionally, so a drift here would silently scramble
    every field on the wire."""
    from repro.core.lpa import INTERACTION_FORMAT

    emitted = []
    tracker = make_tracker(emitted)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100, kind="query", pid=7)
    tracker.on_packet(SERVER, CLIENT, 2.0, 50, kind="reply")
    tracker.flush()
    record = emitted[0]
    record.kernel_wait, record.kernel_cpu = 0.5, 0.25
    record.user_time, record.server_name = 0.125, "srv"
    payload = record.as_dict()
    _name, fields = INTERACTION_FORMAT
    names = tuple(fname for fname, _ftype in fields)
    assert tuple(payload.keys()) == names
    assert record.as_row() == tuple(payload[fname] for fname in names)


@given(st.lists(st.booleans(), min_size=1, max_size=60))
def test_message_count_equals_direction_flips(directions):
    """Property: closed messages == direction runs (paper's definition).

    The current (last) run stays open until flush; interactions are
    floor(messages / 2) consecutive pairs.
    """
    emitted = []
    tracker = InteractionTracker("server", LOCAL_IP, emitted.append)
    ts = 0.0
    for inbound in directions:
        src, dst = (CLIENT, SERVER) if inbound else (SERVER, CLIENT)
        tracker.on_packet(src, dst, ts, 100)
        ts += 0.1
    tracker.flush()
    runs = 1 + sum(
        1 for a, b in zip(directions, directions[1:]) if a != b
    )
    assert tracker.messages_closed == runs
    assert len(emitted) == runs // 2
