"""Global Performance Analyzer: queries, correlation, clock correction, dump."""

import json

import pytest

from repro.cluster import Cluster, NodeClock, synchronize
from repro.core import SysProf, SysProfConfig
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_query_filters():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    gpa = sysprof.gpa
    assert len(gpa.query_interactions(node="server")) == 6
    assert gpa.query_interactions(node="ghost") == []
    assert len(gpa.query_interactions(request_class="query")) == 6
    assert gpa.query_interactions(request_class="other") == []
    client_ip = cluster.node("client").ip
    assert len(gpa.query_interactions(client_ip=client_ip)) == 6
    late = gpa.query_interactions(since=1e9)
    assert late == []


def test_node_summary_aggregates():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    summary = sysprof.gpa.node_summary("server")
    assert summary["count"] == 6
    assert summary["mean_user_time"] == pytest.approx(0.002, rel=0.1)
    assert summary["mean_total"] > summary["mean_user_time"]
    assert sysprof.gpa.node_summary("ghost") == {"node": "ghost", "count": 0}


def test_stats_shape():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=3)
    stats = sysprof.gpa.stats()
    assert stats["interactions"] == 3
    assert "server" in stats["nodes_reporting"]
    assert stats["decode_errors"] == 0


def test_dump_writes_json_lines(tmp_path):
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=3)
    target = tmp_path / "gpa.jsonl"
    sysprof.gpa.dump(str(target))
    lines = [json.loads(line) for line in target.read_text().splitlines()]
    assert lines[0]["type"] == "gpa-dump"
    kinds = {line["type"] for line in lines}
    assert "interaction" in kinds
    assert sysprof.gpa.dumps_written == 1


def test_dump_without_path_rejected():
    cluster, sysprof = build_monitored_pair()
    with pytest.raises(ValueError):
        sysprof.gpa.dump()


def _three_tier(clock_skew):
    """client -> midtier -> backend, both tiers monitored."""
    cluster = Cluster(seed=19)
    cluster.add_node("client")
    cluster.add_node(
        "midtier", clock=NodeClock(offset=0.2 if clock_skew else 0.0)
    )
    cluster.add_node(
        "backend", clock=NodeClock(offset=-0.3 if clock_skew else 0.0)
    )
    cluster.add_node("mgmt")
    table = synchronize(cluster, "mgmt") if clock_skew else None

    def backend(ctx):
        lsock = yield from ctx.listen(9000)
        sock = yield from ctx.accept(lsock)
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            yield from ctx.compute(0.004)
            yield from ctx.send_message(sock, 400, kind="backend-reply")

    def midtier(ctx):
        lsock = yield from ctx.listen(8000)
        sock = yield from ctx.accept(lsock)
        upstream = yield from ctx.connect("backend", 9000)
        while True:
            message = yield from ctx.recv_message(sock)
            if message is None:
                break
            yield from ctx.compute(0.001)
            yield from ctx.send_message(upstream, message.size, kind="fwd")
            reply = yield from ctx.recv_message(upstream)
            yield from ctx.send_message(sock, reply.size, kind="mid-reply")

    def client(ctx):
        sock = yield from ctx.connect("midtier", 8000)
        for _ in range(5):
            yield from ctx.send_message(sock, 2000, kind="req")
            yield from ctx.recv_message(sock)
            yield from ctx.sleep(0.02)
        yield from ctx.close(sock)

    sysprof = SysProf(
        cluster, SysProfConfig(eviction_interval=0.05), clock_table=table
    )
    sysprof.install(monitored=["midtier", "backend"], gpa_node="mgmt")
    sysprof.start()
    cluster.node("backend").spawn("be", backend)
    cluster.node("midtier").spawn("mid", midtier)
    cluster.node("client").spawn("cli", client)
    cluster.run(until=5.0)
    sysprof.flush()
    return cluster, sysprof


def test_correlate_paths_nests_backend_in_midtier():
    _cluster, sysprof = _three_tier(clock_skew=False)
    paths = sysprof.gpa.correlate_paths("midtier", ["backend"])
    client_facing = [
        path for path in paths if path.upstream["request_class"] == "req"
    ]
    assert len(client_facing) == 5
    for path in client_facing:
        assert len(path.downstream) == 1
        assert path.downstream[0]["node"] == "backend"
        assert path.downstream_latency <= path.total_latency
        breakdown = path.breakdown()
        assert breakdown["residual"] >= 0


def test_correlation_survives_clock_skew():
    """Without NTP correction a 0.5s skew would break containment."""
    _cluster, sysprof = _three_tier(clock_skew=True)
    paths = sysprof.gpa.correlate_paths("midtier", ["backend"])
    client_facing = [
        path for path in paths if path.upstream["request_class"] == "req"
    ]
    assert len(client_facing) == 5
    assert all(len(path.downstream) == 1 for path in client_facing)


def test_skew_visible_without_clock_table():
    """Counter-test: raw timestamps from skewed clocks do NOT nest."""
    cluster = Cluster(seed=19)
    # Rebuild the three-tier without giving SysProf the clock table.
    # (Simplest check: corrected refs equal raw ts when table is absent.)
    _cluster, sysprof = _three_tier(clock_skew=False)
    record = sysprof.gpa.query_interactions(node="midtier")[0]
    assert record["start_ref"] == record["start_ts"]
