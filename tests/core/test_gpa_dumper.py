"""GPA periodic disk dumps and experiment driver guards."""

import json

import pytest

from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from tests.core.helpers import echo_server, request_client


def test_periodic_dumper_writes_files(tmp_path):
    dump_path = str(tmp_path / "gpa-periodic.jsonl")
    cluster = Cluster(seed=81)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(
        cluster,
        SysProfConfig(eviction_interval=0.05, dump_path=dump_path,
                      dump_interval=0.5),
    )
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()
    cluster.node("server").spawn("srv", echo_server)
    cluster.node("client").spawn("cli", request_client, "server", 8080, 10)
    cluster.run(until=2.0)
    # "The GPA periodically dumps its information onto local disk."
    assert sysprof.gpa.dumps_written >= 2
    lines = [json.loads(line) for line in open(dump_path)]
    assert any(line["type"] == "gpa-dump" for line in lines)
    assert any(line["type"] == "interaction" for line in lines)


def test_nfs_experiment_raises_when_simulation_too_short():
    from repro.experiments import NfsExperimentConfig, run_nfs_experiment

    config = NfsExperimentConfig(
        thread_counts=(2,), ops_per_thread=30, sim_limit=0.05
    )
    with pytest.raises(RuntimeError, match="did not finish"):
        run_nfs_experiment(2, config)


def test_toolkit_flush_advances_clock():
    cluster = Cluster(seed=82)
    cluster.add_node("server")
    sysprof = SysProf(cluster).install(monitored=["server"])
    sysprof.start()
    before = cluster.sim.now
    sysprof.flush(settle=0.25)
    assert cluster.sim.now == pytest.approx(before + 0.25)
