"""Per-CPU double buffering: switch-on-full, loss on late consumer."""

import pytest

from repro.cluster import Cluster
from repro.core.buffers import DoubleBuffer, SingleBuffer


@pytest.fixture
def kernel():
    return Cluster(seed=11).add_node("n1").kernel


def test_append_until_full_notifies(kernel):
    handoffs = []
    buffer = DoubleBuffer(kernel, 3, on_full=lambda b, i: handoffs.append(i))
    for value in range(3):
        buffer.append(value)
    assert handoffs == [0]
    assert buffer.active_length == 0  # switched to the other buffer


def test_drain_returns_and_clears(kernel):
    handoffs = []
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: handoffs.append(i))
    buffer.append("a")
    buffer.append("b")
    records = buffer.drain(handoffs[0])
    assert records == ["a", "b"]
    assert buffer.drain(handoffs[0]) == []


def test_overwrite_when_consumer_late(kernel):
    """Fill both buffers without draining: the older one is overwritten."""
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: None)
    for value in range(6):
        buffer.append(value)
    # Switches 2 and 3 each found the other buffer undrained: 2+2 lost.
    assert buffer.records_lost == 4
    assert buffer.switches == 3


def test_overwrite_discards_all_undrained_records(kernel):
    """Every record in an overwritten buffer counts as lost, and a later
    drain of that buffer sees only the freshly-appended records."""
    handoffs = []
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: handoffs.append(i))
    for value in ("a0", "a1", "b0", "b1", "c0", "c1"):
        buffer.append(value)
    # Buffer 0 held ("a0","a1") and was never drained before switch 2
    # reclaimed it; likewise buffer 1's ("b0","b1") at switch 3.
    assert buffer.records_lost == 4
    assert handoffs == [0, 1, 0]
    # The pending hand-off holds only the freshest generation.
    assert buffer.drain(0) == ["c0", "c1"]
    assert buffer.drain(1) == []


def test_drain_into_extends_and_clears(kernel):
    handoffs = []
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: handoffs.append(i))
    buffer.append("x")
    buffer.append("y")
    out = ["pre"]
    assert buffer.drain_into(handoffs[0], out) == 2
    assert out == ["pre", "x", "y"]
    # Drained: the next switch onto this buffer loses nothing.
    assert buffer.drain_into(handoffs[0], out) == 0
    buffer.append("z")
    buffer.switch(force=True)
    assert buffer.records_lost == 0


def test_no_loss_when_drained_promptly(kernel):
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: b.drain(i))
    for value in range(20):
        buffer.append(value)
    assert buffer.records_lost == 0
    assert buffer.records_appended == 20


def test_force_switch_flushes_partial(kernel):
    handoffs = []
    buffer = DoubleBuffer(kernel, 100, on_full=lambda b, i: handoffs.append(i))
    buffer.append("only")
    assert buffer.switch(force=True) is not None
    assert handoffs == [0]
    assert buffer.drain(0) == ["only"]


def test_switch_empty_is_noop(kernel):
    buffer = DoubleBuffer(kernel, 4)
    assert buffer.switch(force=True) is None
    assert buffer.switches == 0


def test_switch_empty_identical_forced_or_not(kernel):
    """The emptiness guard is the same regardless of ``force``: nothing
    is handed off, no switch is counted, and no irq time is charged."""
    buffer = DoubleBuffer(kernel, 4)
    busy_before = kernel.cpu.busy_time
    assert buffer.switch() is None
    assert buffer.switch(force=True) is None
    kernel.sim.run()
    assert buffer.switches == 0
    assert kernel.cpu.busy_time == busy_before


def test_forced_and_organic_switch_hand_off_identically(kernel):
    """Force only relaxes the fullness requirement — the hand-off path
    (sequence number, notification, drain contents) is the same one."""
    handoffs = []
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: handoffs.append(i))
    buffer.append("a")
    assert buffer.switch(force=True) == 0  # partial, forced
    assert buffer.drain(0) == ["a"]
    buffer.append("b")
    buffer.append("c")  # fills the other buffer: organic switch
    assert handoffs == [0, 1]
    assert buffer.drain(1) == ["b", "c"]
    assert buffer.records_lost == 0


def test_switch_charges_irq_time(kernel):
    buffer = DoubleBuffer(kernel, 1, on_full=lambda b, i: b.drain(i))
    before = kernel.cpu.busy_time
    buffer.append("x")
    kernel.sim.run()
    assert kernel.cpu.busy_time - before == pytest.approx(
        kernel.costs.buffer_switch
    )


def test_capacity_validation(kernel):
    with pytest.raises(ValueError):
        DoubleBuffer(kernel, 0)


def test_stats_shape(kernel):
    buffer = DoubleBuffer(kernel, 2, on_full=lambda b, i: None)
    buffer.append(1)
    stats = buffer.stats()
    assert stats == {"appended": 1, "lost": 0, "switches": 0, "active_length": 1}


def test_single_buffer_loses_under_load(kernel):
    """The ablation variant drops records when the consumer lags."""
    buffer = SingleBuffer(kernel, 2, on_full=lambda b, i: None)  # never drained
    for value in range(10):
        buffer.append(value)
    assert buffer.records_lost > 0


def test_single_buffer_ok_when_drained(kernel):
    buffer = SingleBuffer(kernel, 2, on_full=lambda b, i: b.drain(i))
    for value in range(10):
        buffer.append(value)
    assert buffer.records_lost == 0
