"""Dissemination daemon + publish-subscribe channels."""

import pytest

from repro.core.channels import ChannelHub, is_sysprof_port
from repro.core import SysProfConfig
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_hub_subscribe_unsubscribe():
    hub = ChannelHub()
    hub.subscribe("sysprof/x", "mgmt", 9100)
    hub.subscribe("sysprof/x", "other", 9101)
    assert hub.subscribers("sysprof/x") == [("mgmt", 9100), ("other", 9101)]
    hub.unsubscribe("sysprof/x", "mgmt", 9100)
    assert hub.subscribers("sysprof/x") == [("other", 9101)]
    assert hub.subscribers("sysprof/none") == []


def test_hub_rejects_out_of_range_ports():
    hub = ChannelHub()
    with pytest.raises(ValueError):
        hub.subscribe("sysprof/x", "mgmt", 80)


def test_hub_duplicate_subscription_idempotent():
    hub = ChannelHub()
    hub.subscribe("c", "n", 9100)
    hub.subscribe("c", "n", 9100)
    assert len(hub.subscribers("c")) == 1


def test_is_sysprof_port():
    assert is_sysprof_port(9100) and is_sysprof_port(9199)
    assert not is_sysprof_port(9099) and not is_sysprof_port(9200)


def test_daemon_publishes_binary_records():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    daemon = sysprof.monitor("server").daemon
    stats = daemon.stats()
    assert stats["records_published"] >= 6
    assert stats["publishes"] >= 1
    assert stats["bytes_published"] > 100


def test_daemon_procfs_exports():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=4)
    procfs = cluster.node("server").kernel.procfs
    daemon_text = procfs.read("/proc/sysprof/daemon")
    assert "records_published=" in daemon_text
    lpa_text = procfs.read("/proc/sysprof/interaction-lpa")
    assert "interactions=4" in lpa_text
    assert "interaction id=" in lpa_text


def test_data_filter_drops_records():
    cluster, sysprof = build_monitored_pair()
    daemon = sysprof.monitor("server").daemon
    daemon.data_filter = lambda lpa_name, record: (
        record.get("request_class") != "query"
    )
    drive_traffic(cluster, sysprof, count=5)
    assert daemon.records_filtered >= 5
    assert sysprof.gpa.query_interactions(node="server") == []


def test_text_encoding_ablation_publishes_but_gpa_skips():
    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(eviction_interval=0.05, text_encoding=True)
    )
    drive_traffic(cluster, sysprof, count=5)
    daemon = sysprof.monitor("server").daemon
    assert daemon.records_published >= 5
    assert sysprof.gpa.query_interactions(node="server") == []


def test_channel_traffic_uses_simulated_network():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    mgmt_nic = cluster.node("mgmt").kernel.nic
    assert mgmt_nic.rx_packets > 0  # GPA received real packets


def test_daemon_stop_halts_publishing():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=4)
    daemon = sysprof.monitor("server").daemon
    published = daemon.records_published
    daemon.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    from tests.core.helpers import request_client

    cluster.node("client").spawn("cli2", request_client, "server", 8080, 4)
    cluster.run(until=cluster.sim.now + 2.0)
    assert daemon.records_published == published


def test_frame_mode_is_default_and_publishes_frames():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    daemon = sysprof.monitor("server").daemon
    assert daemon.frame_mode
    assert daemon.frames_published >= 1
    gpa_stats = sysprof.gpa.stats()
    assert gpa_stats["frames_received"] >= 1
    assert gpa_stats["decode_errors"] == 0
    assert len(sysprof.gpa.query_interactions(node="server")) == 6


def test_per_record_mode_still_publishes():
    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(eviction_interval=0.05, frame_dissemination=False)
    )
    drive_traffic(cluster, sysprof, count=5)
    daemon = sysprof.monitor("server").daemon
    assert not daemon.frame_mode
    assert daemon.frames_published == 0
    assert daemon.records_published >= 5
    assert sysprof.gpa.stats()["decode_errors"] == 0
    assert len(sysprof.gpa.query_interactions(node="server")) == 5


def test_frame_mode_coalesces_multiple_drains_into_one_frame():
    """Two buffer-full notifications pending at one wakeup — here from
    two same-format analyzer buffers — become a single frame carrying
    all four records."""
    from repro.core.lpa import InteractionLPA

    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(
            eviction_interval=0.5, buffer_capacity=2, nodestats=False
        )
    )
    lpa = sysprof.lpa("server")
    monitor = sysprof.monitor("server")
    daemon = monitor.daemon
    extra = InteractionLPA(
        monitor.node.kernel, monitor.kprof,
        name="interaction-lpa-2", buffer_capacity=2,
    )
    daemon.add_lpa(extra)
    base = {
        "node": "server", "client_ip": "10.0.0.9", "client_port": 4000,
        "server_ip": "10.0.0.2", "server_port": 8080, "start_ts": 0.0,
        "end_ts": 0.001, "req_packets": 1, "req_bytes": 100,
        "resp_packets": 1, "resp_bytes": 50, "kernel_wait": 0.0,
        "kernel_cpu": 0.0, "kernel_time": 0.0, "user_time": 0.0,
        "io_blocked": 0.0, "ctx_switches": 0, "disk_ops": 0,
        "server_pid": 1, "server_name": "srv", "request_class": "query",
        "total_latency": 0.001,
    }
    for i in range(2):
        lpa.buffer.append(dict(base, interaction_id=i))
    for i in range(2, 4):
        extra.buffer.append(dict(base, interaction_id=i))
    # Two pending hand-offs queued, one per analyzer buffer.
    assert lpa.buffer.switches == 1 and extra.buffer.switches == 1
    cluster.run(until=0.4)
    assert daemon.frames_published == 1
    assert daemon.records_published == 4
    assert sysprof.gpa.stats()["frames_received"] == 1
    assert len(sysprof.gpa.interactions) == 4


def test_format_descriptors_resent_after_reconnect():
    """A replaced subscriber socket must re-learn every format: the peer's
    decoder registry died with the old connection."""
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=3)
    daemon = sysprof.monitor("server").daemon
    sends_before = daemon.format_sends
    assert sends_before >= 1
    for endpoint in list(daemon._sockets):
        daemon.reset_endpoint(endpoint)
    from tests.core.helpers import request_client

    cluster.node("client").spawn("cli2", request_client, "server", 8080, 3)
    cluster.run(until=cluster.sim.now + 2.0)
    sysprof.flush()
    assert daemon.format_sends > sends_before
    assert sysprof.gpa.stats()["decode_errors"] == 0
    assert len(sysprof.gpa.query_interactions(node="server")) == 6


def test_data_filter_sees_rows_through_record_view():
    """Filter push-down: dict-style filters keep working although the
    analyzers now buffer preordered row tuples."""
    cluster, sysprof = build_monitored_pair()
    daemon = sysprof.monitor("server").daemon
    seen_classes = []
    daemon.data_filter = lambda lpa_name, record: (
        seen_classes.append(record.get("request_class")) or True
    )
    drive_traffic(cluster, sysprof, count=3)
    assert "query" in seen_classes
    assert daemon.records_filtered == 0
    assert len(sysprof.gpa.query_interactions(node="server")) == 3


def test_no_subscribers_means_local_only():
    cluster, sysprof = build_monitored_pair(gpa_node=None)
    drive_traffic(cluster, sysprof, count=4)
    daemon = sysprof.monitor("server").daemon
    # Records were collected and encoded, but nobody subscribed.
    assert daemon.records_published >= 4
    assert daemon.publishes == 0
    assert sysprof.lpa("server").tracker.interactions_emitted == 4
