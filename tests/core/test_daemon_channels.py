"""Dissemination daemon + publish-subscribe channels."""

import pytest

from repro.core.channels import ChannelHub, is_sysprof_port
from repro.core import SysProfConfig
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_hub_subscribe_unsubscribe():
    hub = ChannelHub()
    hub.subscribe("sysprof/x", "mgmt", 9100)
    hub.subscribe("sysprof/x", "other", 9101)
    assert hub.subscribers("sysprof/x") == [("mgmt", 9100), ("other", 9101)]
    hub.unsubscribe("sysprof/x", "mgmt", 9100)
    assert hub.subscribers("sysprof/x") == [("other", 9101)]
    assert hub.subscribers("sysprof/none") == []


def test_hub_rejects_out_of_range_ports():
    hub = ChannelHub()
    with pytest.raises(ValueError):
        hub.subscribe("sysprof/x", "mgmt", 80)


def test_hub_duplicate_subscription_idempotent():
    hub = ChannelHub()
    hub.subscribe("c", "n", 9100)
    hub.subscribe("c", "n", 9100)
    assert len(hub.subscribers("c")) == 1


def test_is_sysprof_port():
    assert is_sysprof_port(9100) and is_sysprof_port(9199)
    assert not is_sysprof_port(9099) and not is_sysprof_port(9200)


def test_daemon_publishes_binary_records():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    daemon = sysprof.monitor("server").daemon
    stats = daemon.stats()
    assert stats["records_published"] >= 6
    assert stats["publishes"] >= 1
    assert stats["bytes_published"] > 100


def test_daemon_procfs_exports():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=4)
    procfs = cluster.node("server").kernel.procfs
    daemon_text = procfs.read("/proc/sysprof/daemon")
    assert "records_published=" in daemon_text
    lpa_text = procfs.read("/proc/sysprof/interaction-lpa")
    assert "interactions=4" in lpa_text
    assert "interaction id=" in lpa_text


def test_data_filter_drops_records():
    cluster, sysprof = build_monitored_pair()
    daemon = sysprof.monitor("server").daemon
    daemon.data_filter = lambda lpa_name, record: (
        record.get("request_class") != "query"
    )
    drive_traffic(cluster, sysprof, count=5)
    assert daemon.records_filtered >= 5
    assert sysprof.gpa.query_interactions(node="server") == []


def test_text_encoding_ablation_publishes_but_gpa_skips():
    cluster, sysprof = build_monitored_pair(
        config=SysProfConfig(eviction_interval=0.05, text_encoding=True)
    )
    drive_traffic(cluster, sysprof, count=5)
    daemon = sysprof.monitor("server").daemon
    assert daemon.records_published >= 5
    assert sysprof.gpa.query_interactions(node="server") == []


def test_channel_traffic_uses_simulated_network():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=6)
    mgmt_nic = cluster.node("mgmt").kernel.nic
    assert mgmt_nic.rx_packets > 0  # GPA received real packets


def test_daemon_stop_halts_publishing():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=4)
    daemon = sysprof.monitor("server").daemon
    published = daemon.records_published
    daemon.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    from tests.core.helpers import request_client

    cluster.node("client").spawn("cli2", request_client, "server", 8080, 4)
    cluster.run(until=cluster.sim.now + 2.0)
    assert daemon.records_published == published


def test_no_subscribers_means_local_only():
    cluster, sysprof = build_monitored_pair(gpa_node=None)
    drive_traffic(cluster, sysprof, count=4)
    daemon = sysprof.monitor("server").daemon
    # Records were collected and encoded, but nobody subscribed.
    assert daemon.records_published >= 4
    assert daemon.publishes == 0
    assert sysprof.lpa("server").tracker.interactions_emitted == 4
