"""ARM-token correlation for interleaved request streams."""


from repro.cluster import Cluster
from repro.core import SysProf, SysProfConfig
from repro.core.arm import ArmTracker
from repro.core.interactions import InteractionTracker

CLIENT = ("10.0.0.1", 5000)
SERVER = ("10.0.0.2", 80)
LOCAL_IP = "10.0.0.2"


def test_interleaved_requests_paired_by_token():
    emitted = []
    tracker = ArmTracker("server", LOCAL_IP, emitted.append)
    # Three requests pipelined before any response (direction flips would
    # see one giant message).
    for index in range(3):
        tracker.on_packet(CLIENT, SERVER, 1.0 + index * 0.1, 1000,
                          kind="q", arm=index, is_last=True)
    # Responses return out of order.
    for index in (2, 0, 1):
        tracker.on_packet(SERVER, CLIENT, 2.0 + index * 0.1, 500,
                          kind="r", arm=index, is_last=True)
    assert len(emitted) == 3
    assert tracker.unpaired_messages == 0
    by_arm = {record.start_ts: record for record in emitted}
    assert len(by_arm) == 3
    for record in emitted:
        assert record.request.bytes == 1000
        assert record.response.bytes == 500


def test_direction_flip_tracker_fails_on_same_stream():
    """Counter-test: the black-box tracker mis-segments this pattern."""
    emitted = []
    tracker = InteractionTracker("server", LOCAL_IP, emitted.append)
    for index in range(3):
        tracker.on_packet(CLIENT, SERVER, 1.0 + index * 0.1, 1000)
    for index in range(3):
        tracker.on_packet(SERVER, CLIENT, 2.0 + index * 0.1, 500)
    tracker.flush()
    # One inbound run + one outbound run -> a single (wrong) interaction.
    assert len(emitted) == 1
    assert emitted[0].request.packets == 3


def test_multi_segment_messages_accumulate():
    emitted = []
    tracker = ArmTracker("server", LOCAL_IP, emitted.append)
    tracker.note_rx_start(CLIENT, SERVER, 0.95, arm=7)
    tracker.on_packet(CLIENT, SERVER, 1.0, 1400, arm=7, is_last=False)
    tracker.on_packet(CLIENT, SERVER, 1.1, 600, arm=7, is_last=True)
    tracker.on_deliver(CLIENT, SERVER, 1.3, arm=7)
    tracker.on_packet(SERVER, CLIENT, 2.0, 800, arm=7, is_last=True)
    assert len(emitted) == 1
    record = emitted[0]
    assert record.request.packets == 2
    assert record.request.bytes == 2000
    assert record.request.first_rx_ts == 0.95
    assert record.request.deliver_ts == 1.3


def test_untagged_traffic_uses_fallback():
    emitted = []
    fallback = InteractionTracker("server", LOCAL_IP, emitted.append)
    tracker = ArmTracker("server", LOCAL_IP, emitted.append, fallback=fallback)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100)  # no arm token
    tracker.on_packet(SERVER, CLIENT, 1.5, 50)
    tracker.flush()
    assert len(emitted) == 1
    assert tracker.untagged_packets == 2


def test_flush_counts_incomplete_transactions():
    emitted = []
    tracker = ArmTracker("server", LOCAL_IP, emitted.append)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100, arm=1, is_last=True)
    tracker.flush()
    assert emitted == []
    assert tracker.unpaired_messages == 1


def test_expire_idle_drops_stale_transactions():
    emitted = []
    tracker = ArmTracker("server", LOCAL_IP, emitted.append, idle_timeout=0.5)
    tracker.on_packet(CLIENT, SERVER, 1.0, 100, arm=1, is_last=True)
    assert tracker.expire_idle(10.0) == 1
    assert tracker.open == {}


def _pipelined_cluster(arm_correlation):
    """Client pipelines 4 tagged requests on ONE connection; the server
    answers them in order after receiving all."""
    cluster = Cluster(seed=71)
    cluster.add_node("client")
    cluster.add_node("server")
    cluster.add_node("mgmt")
    sysprof = SysProf(
        cluster,
        SysProfConfig(eviction_interval=0.05, arm_correlation=arm_correlation),
    )
    sysprof.install(monitored=["server"], gpa_node="mgmt")
    sysprof.start()

    def server(ctx):
        lsock = yield from ctx.listen(8080)
        sock = yield from ctx.accept(lsock)
        pending = []
        while len(pending) < 4:
            message = yield from ctx.recv_message(sock)
            pending.append(message)
        for message in pending:
            yield from ctx.compute(0.001)
            yield from ctx.send_message(
                sock, 700, kind="reply", meta={"arm_id": message.meta["arm_id"]}
            )

    def client(ctx):
        sock = yield from ctx.connect("server", 8080)
        for index in range(4):
            yield from ctx.send_message(
                sock, 3000, kind="query", meta={"arm_id": 100 + index}
            )
        for _ in range(4):
            yield from ctx.recv_message(sock)
        yield from ctx.close(sock)

    cluster.node("server").spawn("srv", server)
    cluster.node("client").spawn("cli", client)
    cluster.run(until=2.0)
    sysprof.flush()
    return sysprof


def test_end_to_end_arm_mode_measures_pipelined_flow():
    sysprof = _pipelined_cluster(arm_correlation=True)
    records = sysprof.gpa.query_interactions(node="server")
    assert len(records) == 4
    for record in records:
        assert record["req_bytes"] == 3000
        assert record["resp_bytes"] == 700


def test_end_to_end_blackbox_mode_undercounts_pipelined_flow():
    sysprof = _pipelined_cluster(arm_correlation=False)
    records = sysprof.gpa.query_interactions(node="server")
    # Direction flips collapse the 4 pipelined requests into one run.
    assert len(records) < 4
