"""E-Code: lexer, parser, evaluation, sandboxing, budget."""

import pytest

from repro.core.ecode import (
    ECodeBudgetExceeded,
    ECodeError,
    ECodeProgram,
    tokenize,
)
from repro.core.events import MonEvent


def compile_and_instance(source, budget=100000):
    return ECodeProgram.compile(source).instantiate(step_budget=budget)


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------

def test_tokenize_basics():
    tokens = tokenize("int x = 42; // comment\n double y;")
    kinds = [(token.kind, token.value) for token in tokens]
    assert ("keyword", "int") in kinds
    assert ("number", "42") in kinds
    assert ("eof", "") == kinds[-1]
    assert not any(value == "// comment" for _, value in kinds)


def test_tokenize_block_comment_and_ops():
    tokens = tokenize("/* multi\nline */ a && b || c <= 1.5e3")
    values = [token.value for token in tokens]
    assert "&&" in values and "||" in values and "<=" in values
    assert "1.5e3" in values


def test_tokenize_rejects_garbage():
    with pytest.raises(ECodeError, match="lex error"):
        tokenize("int x = `weird`;")


# ----------------------------------------------------------------------
# declarations + arithmetic
# ----------------------------------------------------------------------

def test_global_initialization_and_types():
    instance = compile_and_instance("int count = 2 + 3; double ratio = 1 / 4.0;")
    assert instance.globals["count"] == 5
    assert instance.globals["ratio"] == pytest.approx(0.25)


def test_integer_division_semantics():
    instance = compile_and_instance(
        "int f() { return 7 / 2; } double g() { return 7 / 2.0; }"
    )
    assert instance.call("f") == 3
    assert instance.call("g") == pytest.approx(3.5)


def test_operator_precedence():
    instance = compile_and_instance("int f() { return 2 + 3 * 4 - 1; }")
    assert instance.call("f") == 13


def test_parenthesized_and_unary():
    instance = compile_and_instance("int f() { return -(2 + 3) * 2; }")
    assert instance.call("f") == -10


def test_comparison_and_logic():
    instance = compile_and_instance(
        "int f(int a, int b) { return a < b && b != 0 || a == 99; }"
    )
    assert instance.call("f", 1, 2) == 1
    assert instance.call("f", 5, 2) == 0
    assert instance.call("f", 99, 0) == 1


def test_modulo_and_builtins():
    instance = compile_and_instance(
        "int f() { return max(10 % 3, abs(0 - 5)); } double g() { return sqrt(9.0); }"
    )
    assert instance.call("f") == 5
    assert instance.call("g") == pytest.approx(3.0)


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------

def test_if_else_chain():
    instance = compile_and_instance(
        """
        int classify(double v) {
            if (v < 1.0) { return 0; }
            else if (v < 10.0) { return 1; }
            else return 2;
        }
        """
    )
    assert instance.call("classify", 0.5) == 0
    assert instance.call("classify", 5.0) == 1
    assert instance.call("classify", 50.0) == 2


def test_while_loop_sums():
    instance = compile_and_instance(
        """
        int sum_to(int n) {
            int total = 0;
            int i = 1;
            while (i <= n) { total += i; i += 1; }
            return total;
        }
        """
    )
    assert instance.call("sum_to", 10) == 55


def test_compound_assignment():
    instance = compile_and_instance(
        """
        double acc = 0.0;
        void add(double v) { acc += v; acc *= 2.0; }
        """
    )
    instance.call("add", 1.0)
    assert instance.globals["acc"] == 2.0


def test_local_shadows_global():
    instance = compile_and_instance(
        """
        int x = 10;
        int f() { int x = 1; x += 1; return x; }
        """
    )
    assert instance.call("f") == 2
    assert instance.globals["x"] == 10


def test_function_calls_functions():
    instance = compile_and_instance(
        """
        int double_it(int v) { return v * 2; }
        int quad(int v) { return double_it(double_it(v)); }
        """
    )
    assert instance.call("quad", 3) == 12


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------

def test_event_field_access():
    instance = compile_and_instance(
        """
        int big = 0;
        void handle(event e) { if (e.size > 1000) { big += 1; } }
        """
    )
    instance.call("handle", MonEvent("net.rx.ip", 1.0, "n1", {"size": 2000}))
    instance.call("handle", MonEvent("net.rx.ip", 1.1, "n1", {"size": 10}))
    assert instance.globals["big"] == 1


def test_event_builtin_fields_and_missing_default():
    instance = compile_and_instance(
        """
        double last = 0.0;
        double missing = 0.0;
        void handle(event e) { last = e.ts; missing = e.absent_field; }
        """
    )
    instance.call("handle", MonEvent("x", 4.5, "n1", {}))
    assert instance.globals["last"] == 4.5
    assert instance.globals["missing"] == 0


def test_string_comparison_on_fields():
    instance = compile_and_instance(
        """
        int reads = 0;
        void handle(event e) { if (e.call == "read") { reads += 1; } }
        """
    )
    instance.call("handle", MonEvent("syscall.entry", 0.0, "n1", {"call": "read"}))
    instance.call("handle", MonEvent("syscall.entry", 0.0, "n1", {"call": "write"}))
    assert instance.globals["reads"] == 1


# ----------------------------------------------------------------------
# errors + safety
# ----------------------------------------------------------------------

def test_parse_error_reports_line():
    with pytest.raises(ECodeError, match="line 2"):
        ECodeProgram.compile("int x = 1;\nint f( { }")


def test_undeclared_assignment_rejected():
    instance = compile_and_instance("void f() { ghost = 1; }")
    with pytest.raises(ECodeError, match="undeclared"):
        instance.call("f")


def test_undefined_name_rejected():
    instance = compile_and_instance("int f() { return ghost; }")
    with pytest.raises(ECodeError, match="undefined"):
        instance.call("f")


def test_division_by_zero_raises_ecode_error():
    instance = compile_and_instance("int f(int d) { return 1 / d; }")
    with pytest.raises(ECodeError, match="division by zero"):
        instance.call("f", 0)


def test_unknown_function_rejected():
    instance = compile_and_instance("int f() { return system(1); }")
    with pytest.raises(ECodeError, match="unknown function"):
        instance.call("f")


def test_no_python_builtins_reachable():
    instance = compile_and_instance("int f() { return open(1); }")
    with pytest.raises(ECodeError):
        instance.call("f")


def test_infinite_loop_hits_budget():
    instance = compile_and_instance(
        "void f() { int i = 0; while (1) { i += 1; } }", budget=5000
    )
    with pytest.raises(ECodeBudgetExceeded):
        instance.call("f")


def test_wrong_arity_rejected():
    instance = compile_and_instance("int f(int a) { return a; }")
    with pytest.raises(ECodeError, match="takes 1 args"):
        instance.call("f")


def test_missing_function_rejected():
    instance = compile_and_instance("int x = 1;")
    with pytest.raises(ECodeError, match="no such function"):
        instance.call("nope")


def test_void_global_rejected():
    with pytest.raises(ECodeError, match="void variable"):
        ECodeProgram.compile("void x;")


def test_function_names_listing():
    program = ECodeProgram.compile(
        "void handle(event e) { } double metric_mean() { return 0.0; }"
    )
    assert program.function_names == ["handle", "metric_mean"]


# ----------------------------------------------------------------------
# arrays (in-kernel histograms for CPAs)
# ----------------------------------------------------------------------

def test_array_declare_index_assign():
    instance = compile_and_instance(
        """
        int hist[4];
        void add(int bucket) { hist[bucket] += 1; }
        int get(int bucket) { return hist[bucket]; }
        """
    )
    instance.call("add", 2)
    instance.call("add", 2)
    instance.call("add", 0)
    assert instance.call("get", 2) == 2
    assert instance.call("get", 0) == 1
    assert instance.globals["hist"] == [1, 0, 2, 0]


def test_local_array_and_len_builtin():
    instance = compile_and_instance(
        """
        int sum_squares(int n) {
            double tmp[8];
            int i = 0;
            while (i < n) { tmp[i] = i * i; i += 1; }
            double total = 0.0;
            i = 0;
            while (i < len(tmp)) { total += tmp[i]; i += 1; }
            return total;
        }
        """
    )
    assert instance.call("sum_squares", 4) == 14  # 0+1+4+9


def test_array_histogram_program():
    """The motivating use: a latency histogram analyzer."""
    instance = compile_and_instance(
        """
        int buckets[5];
        void handle(event e) {
            int b = 0;
            double v = e.latency;
            if (v >= 0.001) { b = 1; }
            if (v >= 0.01) { b = 2; }
            if (v >= 0.1) { b = 3; }
            if (v >= 1.0) { b = 4; }
            buckets[b] += 1;
        }
        double metric_slow() { return buckets[3] + buckets[4]; }
        """
    )
    for latency in (0.0005, 0.005, 0.05, 0.5, 5.0):
        instance.call("handle", MonEvent("x", 0.0, "n", {"latency": latency}))
    assert instance.globals["buckets"] == [1, 1, 1, 1, 1]
    assert instance.call("metric_slow") == 2


def test_array_bounds_checked():
    instance = compile_and_instance(
        "int a[3]; void f(int i) { a[i] = 1; } int g(int i) { return a[i]; }"
    )
    with pytest.raises(ECodeError, match="out of bounds"):
        instance.call("f", 3)
    with pytest.raises(ECodeError, match="out of bounds"):
        instance.call("g", -1)


def test_indexing_non_array_rejected():
    instance = compile_and_instance("int x = 1; int f() { return x[0]; }")
    with pytest.raises(ECodeError, match="not an array"):
        instance.call("f")


def test_array_size_limits():
    with pytest.raises(ECodeError, match="size out of range"):
        compile_and_instance("int a[0];")
    with pytest.raises(ECodeError, match="size out of range"):
        compile_and_instance("int a[100000];")


def test_array_expression_statement_not_confused():
    """`h[i];` parses as an expression, not an assignment."""
    instance = compile_and_instance(
        "int h[2]; int f() { h[1] = 7; h[1]; return h[1]; }"
    )
    assert instance.call("f") == 7
