"""Per-syscall activity tracking (the paper's finest activity granularity)."""


from repro.core import SysProfConfig
from tests.core.helpers import build_monitored_pair, drive_traffic


def _pair(eviction=0.05):
    return build_monitored_pair(
        config=SysProfConfig(eviction_interval=eviction, syscall_stats=True)
    )


def _run_without_flush(cluster, count=5):
    """Drive traffic but keep the live window intact (no eviction)."""
    from tests.core.helpers import echo_server, request_client

    cluster.node("server").spawn("srv", echo_server)
    cluster.node("client").spawn("cli", request_client, "server", 8080, count)
    cluster.run(until=3.0)


def test_syscalls_paired_and_counted():
    # Long eviction interval: the live window survives until we read it.
    cluster, sysprof = _pair(eviction=30.0)
    _run_without_flush(cluster, count=5)
    lpa = sysprof.monitor("server").syscall_lpa
    snapshot = lpa.snapshot()
    # The echo server performs listen/accept/recv/send syscalls.
    assert snapshot["recv"]["count"] >= 5
    assert snapshot["send"]["count"] >= 5
    assert "listen" in snapshot and "accept" in snapshot
    assert lpa.unmatched_exits == 0


def test_blocking_syscalls_show_their_residency():
    cluster, sysprof = _pair(eviction=30.0)
    _run_without_flush(cluster, count=5)
    snapshot = sysprof.monitor("server").syscall_lpa.snapshot()
    # recv blocks waiting for requests (client thinks 10 ms between them);
    # send of a 3 KB reply completes in microseconds.
    assert snapshot["recv"]["mean"] > snapshot["send"]["mean"]
    assert snapshot["recv"]["max"] >= snapshot["recv"]["mean"]


def test_summaries_reach_gpa():
    cluster, sysprof = _pair()
    drive_traffic(cluster, sysprof, count=5)
    summaries = list(sysprof.gpa.syscall_summaries)
    assert summaries
    calls = {record["call"] for record in summaries}
    assert "recv" in calls and "send" in calls
    for record in summaries:
        assert record["count"] >= 1
        assert record["mean_latency"] >= 0
        assert record["window_end"] >= record["window_start"]


def test_window_resets_after_eviction():
    cluster, sysprof = _pair()
    drive_traffic(cluster, sysprof, count=5)
    lpa = sysprof.monitor("server").syscall_lpa
    lpa.evict()
    assert lpa.snapshot() == {}


def test_disabled_by_default():
    cluster, sysprof = build_monitored_pair()
    assert sysprof.monitor("server").syscall_lpa is None


def test_stats_shape():
    cluster, sysprof = _pair()
    drive_traffic(cluster, sysprof, count=2)
    stats = sysprof.monitor("server").syscall_lpa.stats()
    assert "unmatched_exits" in stats
    assert stats["buffer"]["appended"] >= 1
