"""Raw event capture + offline replay."""

import pytest

from repro.core.offline import EventLog, replay_interactions
from repro.ossim import tracepoints as tp
from tests.core.helpers import build_monitored_pair, drive_traffic


def _captured_pair(count=8):
    cluster, sysprof = build_monitored_pair()
    log = EventLog(
        sysprof.kprof("server"),
        etypes=[tp.NET_RX_DRIVER, tp.NET_TX_DRIVER, tp.SOCK_ENQUEUE,
                tp.SOCK_DELIVER],
    ).start()
    drive_traffic(cluster, sysprof, count=count)
    return cluster, sysprof, log


def test_event_log_records_raw_events():
    cluster, sysprof, log = _captured_pair()
    assert log.recorded > 20
    assert len(log) == log.recorded
    etypes = {event.etype for event in log.events}
    assert tp.SOCK_ENQUEUE in etypes and tp.NET_TX_DRIVER in etypes


def test_event_log_capacity_bounds_memory():
    cluster, sysprof = build_monitored_pair()
    log = EventLog(sysprof.kprof("server"), capacity=10).start()
    drive_traffic(cluster, sysprof, count=5)
    assert len(log) == 10
    assert log.recorded > 10


def test_event_log_stop_halts_recording():
    cluster, sysprof, log = _captured_pair(count=4)
    recorded = log.recorded
    log.stop()
    from tests.core.helpers import request_client

    cluster.node("client").spawn("cli2", request_client, "server", 8080, 3)
    cluster.run(until=cluster.sim.now + 2.0)
    assert log.recorded == recorded


def test_offline_replay_matches_online_extraction():
    """The offline replay reproduces the online LPA's interaction set."""
    cluster, sysprof, log = _captured_pair(count=8)
    online = sysprof.lpa("server").window_snapshot()
    replayed = replay_interactions(
        log.events, "server", cluster.node("server").ip
    )
    assert len(replayed) == len(online) == 8
    for online_record, offline_record in zip(online, replayed):
        assert offline_record.request.bytes == online_record["req_bytes"]
        assert offline_record.response.bytes == online_record["resp_bytes"]
        assert offline_record.start_ts == pytest.approx(
            online_record["start_ts"], abs=1e-9
        )
        assert offline_record.kernel_wait == pytest.approx(
            online_record["kernel_wait"], abs=1e-9
        )


def test_save_and_load_roundtrip(tmp_path):
    cluster, sysprof, log = _captured_pair(count=4)
    path = log.save(str(tmp_path / "events.jsonl"))
    loaded = EventLog.load(path)
    assert len(loaded) == len(log)
    assert loaded[0].etype == log.events[0].etype
    assert loaded[0].fields == log.events[0].fields
    # Replay from disk gives the same interactions.
    replayed = replay_interactions(loaded, "server", cluster.node("server").ip)
    assert len(replayed) == 4


def test_raw_capture_costs_more_than_lpa():
    """Shipping raw events is the expensive path the paper avoids —
    recording every event costs CPU at the probe site."""
    cluster_a, sysprof_a = build_monitored_pair(seed=91)
    drive_traffic(cluster_a, sysprof_a, count=10)
    lean = cluster_a.node("server").kernel.cpu.busy_time

    cluster_b, sysprof_b = build_monitored_pair(seed=91)
    EventLog(sysprof_b.kprof("server"), cost=0.3e-6).start()
    drive_traffic(cluster_b, sysprof_b, count=10)
    heavy = cluster_b.node("server").kernel.cpu.busy_time
    assert heavy > lean
