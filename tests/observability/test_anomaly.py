"""Robust z-score / rate anomaly detectors over recorded series."""

import pytest

from repro.observability.anomaly import (
    AnomalyMonitor,
    SeriesDetector,
    robust_zscore,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import TimeSeriesRecorder


def build(state, **recorder_kwargs):
    registry = MetricsRegistry()
    registry.gauge("sysprof.node.backend.cpu_busy", fn=lambda: state["busy"])
    registry.gauge("app.level", fn=lambda: state["level"])
    return TimeSeriesRecorder(registry, **recorder_kwargs)


def test_robust_zscore_basics():
    window = [10.0, 10.0, 11.0, 9.0, 10.0]
    assert robust_zscore(10.0, window) < 1.0
    assert robust_zscore(30.0, window) > 6.0
    # Flat window: only an actual departure is surprising.
    assert robust_zscore(5.0, [5.0] * 6) == 0.0
    assert robust_zscore(5.1, [5.0] * 6) == float("inf")
    assert robust_zscore(1.0, []) == 0.0


def test_detector_validation():
    with pytest.raises(ValueError):
        SeriesDetector("x", mode="weird")
    with pytest.raises(ValueError):
        SeriesDetector("x", window=1)


def test_zscore_detector_fires_on_level_shift_with_hysteresis():
    state = {"busy": 0.0, "level": 10.0}
    recorder = build(state)
    detector = SeriesDetector("app.level", mode="zscore", window=8,
                              threshold=6.0, fire_after=2, clear_after=3)
    wobble = (10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 10.2, 9.9)
    transitions = []
    tick = 0
    for value in wobble:
        state["level"] = value
        recorder.sample(float(tick))
        transitions.append(detector.observe(recorder, "app.level"))
        tick += 1
    assert transitions == [None] * len(wobble)
    # A sustained 10x shift: first anomalous sample arms, second fires.
    for value in (100.0, 100.0):
        state["level"] = value
        recorder.sample(float(tick))
        transitions.append(detector.observe(recorder, "app.level"))
        tick += 1
    assert transitions[-2:] == [None, "fire"]
    assert "app.level" in detector.firing
    # Back to normal: clear_after consecutive normal samples resolve.
    clears = []
    for value in (10.0, 10.1, 9.9):
        state["level"] = value
        recorder.sample(float(tick))
        clears.append(detector.observe(recorder, "app.level"))
        tick += 1
    assert clears == [None, None, "clear"]
    assert detector.firing == {}


def test_rate_detector_catches_slope_change_on_cumulative_series():
    state = {"busy": 0.0, "level": 0.0}
    recorder = build(state)
    detector = SeriesDetector("sysprof.node.*.cpu_busy", mode="rate",
                              window=8, threshold=6.0, fire_after=2)
    name = "sysprof.node.backend.cpu_busy"
    # Steady 10% duty cycle for 10 samples: no anomaly.
    for tick in range(10):
        state["busy"] = tick * 0.1 * 0.5
        recorder.sample(tick * 0.5)
        assert detector.observe(recorder, name) is None
    # A CPU hog pins the core: slope jumps 0.1 -> 1.0; fires on the
    # second hogged interval.
    results = []
    for tick in range(10, 13):
        state["busy"] += 0.5  # fully busy interval
        recorder.sample(tick * 0.5)
        results.append(detector.observe(recorder, name))
    assert "fire" in results
    assert results[1] == "fire"


def test_score_requires_min_baseline():
    state = {"busy": 0.0, "level": 5.0}
    recorder = build(state)
    detector = SeriesDetector("app.level", min_baseline=5)
    for tick in range(5):
        recorder.sample(float(tick))
        assert detector.score(recorder, "app.level") is None
    recorder.sample(5.0)
    assert detector.score(recorder, "app.level") is not None


def test_monitor_fires_and_clears_through_active_map():
    state = {"busy": 0.0, "level": 10.0}
    recorder = build(state)
    monitor = AnomalyMonitor(recorder, detectors=[
        SeriesDetector("app.level", mode="zscore", window=8,
                       threshold=6.0, fire_after=2, clear_after=2),
    ])
    events = []
    for tick in range(8):
        state["level"] = 10.0 + (0.1 if tick % 2 else -0.1)
        recorder.sample(float(tick))
        events += monitor.check(now=float(tick))
    assert events == []
    for tick in range(8, 10):
        state["level"] = 200.0
        recorder.sample(float(tick))
        events += monitor.check(now=float(tick))
    assert [e["state"] for e in events] == ["fire"]
    assert events[0]["name"] == "anomaly:zscore(app.level)"
    assert list(monitor.active) == ["anomaly:zscore(app.level)"]
    for tick in range(10, 12):
        state["level"] = 10.0
        recorder.sample(float(tick))
        events += monitor.check(now=float(tick))
    assert [e["state"] for e in events] == ["fire", "clear"]
    assert monitor.active == {}
    stats = monitor.stats()
    assert stats["fired"] == 1 and stats["cleared"] == 1
    assert stats["active"] == 0


def test_monitor_blame_extracts_node_from_metric_name():
    recorder = build({"busy": 0.0, "level": 0.0})
    monitor = AnomalyMonitor(recorder, detectors=[])
    blame = monitor._blame("sysprof.node.backend1.cpu_busy")
    assert blame["node"] == "backend1"
    assert monitor._blame("app.level")["node"] is None
