"""MetricsRegistry: kinds, flattening, and the SysProf wiring."""

import pytest

from repro.observability.metrics import (
    COUNTER,
    GAUGE,
    Counter,
    MetricsRegistry,
)
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_counter_is_monotone():
    counter = Counter("c")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(5.0)
    gauge.set(2.0)
    assert registry.get("g").value == 2.0


def test_duplicate_names_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="duplicate"):
        registry.gauge("x")


def test_lazy_fn_sampled_at_collect_time():
    registry = MetricsRegistry()
    box = {"v": 1}
    registry.gauge("boxed", fn=lambda: box["v"])
    assert registry.collect()["boxed"] == (GAUGE, 1)
    box["v"] = 9
    assert registry.collect()["boxed"] == (GAUGE, 9)


def test_source_flattening_skips_non_numeric():
    registry = MetricsRegistry()
    registry.register_source("pre", lambda: {
        "delivered": 10,
        "nested": {"depth": 3, "label": "skip-me"},
        "flag": True,
        "names": ["a", "b"],
    })
    collected = registry.collect()
    assert collected["pre.delivered"] == (COUNTER, 10)
    assert collected["pre.nested.depth"] == (GAUGE, 3)  # gauge vocabulary
    assert "pre.nested.label" not in collected
    assert "pre.flag" not in collected
    assert "pre.names" not in collected


def test_render_is_sorted_text():
    registry = MetricsRegistry()
    registry.counter("b.total").inc(2)
    registry.gauge("a.level").set(0.5)
    text = registry.render()
    lines = text.strip().split("\n")
    assert lines == ["a.level gauge 0.5", "b.total counter 2"]


def test_all_counters_cumulative_across_restarts():
    """Registry-wide extension of the ``frames_received`` regression:
    killing and restarting the daemon and the GPA must not move *any*
    registered counter backwards — restarts rebuild internal state, the
    operator-facing totals stay monotone."""
    from repro.core import SysProfConfig

    config = SysProfConfig(
        eviction_interval=0.05, syscall_stats=True, latency_sketches=True
    )
    cluster, sysprof = build_monitored_pair(config=config)
    drive_traffic(cluster, sysprof, count=30, run_until=1.5)
    before = sysprof.metrics.collect()
    assert any(kind == COUNTER for kind, _ in before.values())

    sysprof.monitor("server").daemon.kill()
    sysprof.gpa.kill()
    cluster.run(until=cluster.sim.now + 0.3)
    sysprof.monitor("server").daemon.restart()
    sysprof.gpa.restart()
    # The echo server is still listening; only a fresh client is needed.
    from tests.core.helpers import request_client

    cluster.node("client").spawn("cli2", request_client, "server", 8080, 30)
    cluster.run(until=cluster.sim.now + 1.5)
    sysprof.flush()

    after = sysprof.metrics.collect()
    regressions = {
        name: (value, after[name][1])
        for name, (kind, value) in before.items()
        if kind == COUNTER and name in after and after[name][1] < value
    }
    assert not regressions, (
        "counters went backwards across restart: {}".format(regressions)
    )


def test_build_registry_covers_installation():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof)
    registry = sysprof.metrics
    assert registry is not None
    collected = registry.collect()
    assert collected["sysprof.kprof.server.delivered"][1] > 0
    assert collected["sysprof.daemon.server.publishes"][1] > 0
    assert collected["sysprof.gpa.mgmt.records_received"][1] > 0
    kind, busy = collected["sysprof.node.server.cpu_busy"]
    assert kind == GAUGE
    assert busy == pytest.approx(cluster.node("server").kernel.cpu.busy_time)
    # Exposed through /proc on both the monitored and the GPA node.
    for node in ("server", "mgmt"):
        text = cluster.node(node).kernel.procfs.read("/proc/sysprof/metrics")
        assert "sysprof.daemon.server.publishes counter" in text
