"""MetricsRegistry: kinds, flattening, and the SysProf wiring."""

import pytest

from repro.observability.metrics import (
    COUNTER,
    GAUGE,
    Counter,
    MetricsRegistry,
)
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_counter_is_monotone():
    counter = Counter("c")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(5.0)
    gauge.set(2.0)
    assert registry.get("g").value == 2.0


def test_duplicate_names_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="duplicate"):
        registry.gauge("x")


def test_lazy_fn_sampled_at_collect_time():
    registry = MetricsRegistry()
    box = {"v": 1}
    registry.gauge("boxed", fn=lambda: box["v"])
    assert registry.collect()["boxed"] == (GAUGE, 1)
    box["v"] = 9
    assert registry.collect()["boxed"] == (GAUGE, 9)


def test_source_flattening_skips_non_numeric():
    registry = MetricsRegistry()
    registry.register_source("pre", lambda: {
        "delivered": 10,
        "nested": {"depth": 3, "label": "skip-me"},
        "flag": True,
        "names": ["a", "b"],
    })
    collected = registry.collect()
    assert collected["pre.delivered"] == (COUNTER, 10)
    assert collected["pre.nested.depth"] == (GAUGE, 3)  # gauge vocabulary
    assert "pre.nested.label" not in collected
    assert "pre.flag" not in collected
    assert "pre.names" not in collected


def test_render_is_sorted_text():
    registry = MetricsRegistry()
    registry.counter("b.total").inc(2)
    registry.gauge("a.level").set(0.5)
    text = registry.render()
    lines = text.strip().split("\n")
    assert lines == ["a.level gauge 0.5", "b.total counter 2"]


def test_build_registry_covers_installation():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof)
    registry = sysprof.metrics
    assert registry is not None
    collected = registry.collect()
    assert collected["sysprof.kprof.server.delivered"][1] > 0
    assert collected["sysprof.daemon.server.publishes"][1] > 0
    assert collected["sysprof.gpa.mgmt.records_received"][1] > 0
    kind, busy = collected["sysprof.node.server.cpu_busy"]
    assert kind == GAUGE
    assert busy == pytest.approx(cluster.node("server").kernel.cpu.busy_time)
    # Exposed through /proc on both the monitored and the GPA node.
    for node in ("server", "mgmt"):
        text = cluster.node(node).kernel.procfs.read("/proc/sysprof/metrics")
        assert "sysprof.daemon.server.publishes counter" in text
