"""Span tracer: recording, Chrome trace validity, and the validator."""

import json

import pytest

from repro.observability import tracer as span_tracer
from repro.observability.tracer import SpanTracer, validate_chrome_trace
from tests.core.helpers import build_monitored_pair, drive_traffic


@pytest.fixture
def tracer():
    t = span_tracer.install()
    yield t
    span_tracer.uninstall()


def test_disabled_by_default():
    assert span_tracer.enabled is False
    assert span_tracer.active() is None


def test_install_flips_flag():
    t = span_tracer.install()
    try:
        assert span_tracer.enabled is True
        assert span_tracer.active() is t
    finally:
        span_tracer.uninstall()
    assert span_tracer.enabled is False


def test_pipeline_run_produces_valid_chrome_trace(tracer):
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof)
    doc = tracer.chrome_trace()
    count = validate_chrome_trace(doc)
    assert count > 0
    names = {event["name"] for event in doc["traceEvents"]}
    # Probe instants, buffer switches, publishes, and interaction spans.
    assert any(name.startswith("buffer-switch") for name in names)
    assert any(name.startswith("publish") for name in names)
    assert any(
        event["ph"] == "X" and event["cat"] == "interaction"
        for event in doc["traceEvents"]
    )
    # One pid per node; the daemon's lane is labelled.
    processes = {
        event["args"]["name"]
        for event in doc["traceEvents"]
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    assert "server" in processes
    threads = {
        event["args"]["name"]
        for event in doc["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert "sysprofd" in threads


def test_export_round_trips(tracer, tmp_path):
    tracer.complete("n1", 7, "req", "interaction", 0.5, 0.25)
    tracer.instant("n1", 0, "tick", "probe", 0.6)
    path = tracer.export(str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert validate_chrome_trace(doc) == 2
    assert doc["otherData"]["simulated"] is True


def test_max_events_drops_and_reports():
    t = SpanTracer(max_events=3)
    for index in range(5):
        t.instant("n", 0, "e{}".format(index), "probe", index * 0.1)
    assert len(t) == 3
    assert t.dropped == 2
    assert t.chrome_trace()["otherData"]["dropped_events"] == 2


def test_events_sorted_even_when_recorded_out_of_order():
    t = SpanTracer()
    t.instant("n", 0, "late", "probe", 2.0)
    t.instant("n", 0, "early", "probe", 1.0)
    validate_chrome_trace(t.chrome_trace())


def test_validator_rejects_unsorted_ts():
    doc = {"traceEvents": [
        {"ph": "i", "pid": 1, "tid": 0, "ts": 5, "name": "a", "s": "t"},
        {"ph": "i", "pid": 1, "tid": 0, "ts": 1, "name": "b", "s": "t"},
    ]}
    with pytest.raises(ValueError, match="out of order"):
        validate_chrome_trace(doc)


def test_validator_rejects_unmatched_end():
    doc = {"traceEvents": [
        {"ph": "E", "pid": 1, "tid": 0, "ts": 1, "name": "a"},
    ]}
    with pytest.raises(ValueError, match="E without matching B"):
        validate_chrome_trace(doc)


def test_validator_rejects_unclosed_begin():
    doc = {"traceEvents": [
        {"ph": "B", "pid": 1, "tid": 0, "ts": 1, "name": "a"},
    ]}
    with pytest.raises(ValueError, match="unclosed"):
        validate_chrome_trace(doc)


def test_validator_rejects_negative_ts_and_dur():
    with pytest.raises(ValueError, match="bad ts"):
        validate_chrome_trace({"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 0, "ts": -1, "name": "a"},
        ]})
    with pytest.raises(ValueError, match="bad dur"):
        validate_chrome_trace({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "ts": 1, "name": "a", "dur": -2},
        ]})


def test_validator_allows_metadata_anywhere():
    doc = {"traceEvents": [
        {"ph": "i", "pid": 1, "tid": 0, "ts": 5, "name": "a", "s": "t"},
        {"ph": "M", "pid": 1, "tid": 0, "ts": 0, "name": "process_name",
         "args": {"name": "n"}},
        {"ph": "i", "pid": 1, "tid": 0, "ts": 6, "name": "b", "s": "t"},
    ]}
    assert validate_chrome_trace(doc) == 2
