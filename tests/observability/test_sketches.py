"""QuantileSketch accuracy, merging, wire rows, and the GPA SketchStore."""

import math
import random

import pytest

from repro.core.encoding import pack_count_runs, unpack_count_runs
from repro.observability.sketches import (
    SKETCH_PAYLOAD_WIDTH,
    QuantileSketch,
    SketchStore,
)


def _exact_quantile(values, q):
    """Nearest-rank mirror of QuantileSketch.quantile's rank walk."""
    ordered = sorted(values)
    return ordered[math.ceil(q * (len(ordered) - 1))]


def _lognormal_samples(n=20000, seed=5):
    rng = random.Random(seed)
    return [rng.lognormvariate(-6.0, 1.0) for _ in range(n)]


def test_relative_error_bound():
    values = _lognormal_samples()
    sketch = QuantileSketch(alpha=0.01)
    for value in values:
        sketch.add(value)
    for q in (0.5, 0.9, 0.95, 0.99):
        exact = _exact_quantile(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) / exact <= 0.02, "q={}".format(q)


def test_merge_equals_concatenated_stream():
    values = _lognormal_samples(n=6000, seed=7)
    whole = QuantileSketch()
    parts = [QuantileSketch() for _ in range(3)]
    for i, value in enumerate(values):
        whole.add(value)
        parts[i % 3].add(value)
    merged = parts[0].copy()
    merged.merge(parts[1]).merge(parts[2])
    assert merged.count == whole.count
    assert merged.sum_value == pytest.approx(whole.sum_value)
    for q in (0.5, 0.9, 0.99):
        assert merged.quantile(q) == pytest.approx(whole.quantile(q))


def test_merge_alpha_mismatch_rejected():
    with pytest.raises(ValueError, match="alpha"):
        QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))


def test_empty_and_zero_handling():
    sketch = QuantileSketch()
    assert sketch.quantile(0.5) is None
    assert sketch.mean == 0.0
    sketch.add(0.0).add(-3.0).add(1.0)
    assert sketch.zero_count == 2
    assert sketch.count == 3
    assert sketch.quantile(0.0) == 0.0  # zeros sort first
    assert sketch.quantile(1.0) == pytest.approx(1.0, rel=0.02)


def test_collapse_bounds_buckets_and_keeps_tail():
    sketch = QuantileSketch(alpha=0.01, max_buckets=32)
    values = _lognormal_samples(n=5000, seed=9)
    for value in values:
        sketch.add(value)
    assert len(sketch.buckets) <= 32
    assert sketch.collapses > 0
    # Collapsing only blurs the low quantiles; the tail stays accurate.
    exact = _exact_quantile(values, 0.99)
    assert abs(sketch.quantile(0.99) - exact) / exact <= 0.02


def test_count_run_codec_roundtrip():
    rng = random.Random(3)
    for _ in range(25):
        buckets = {
            rng.randrange(-500, 500): rng.randrange(1, 10**6)
            for _ in range(rng.randrange(0, 60))
        }
        base, payload = pack_count_runs(buckets)
        assert unpack_count_runs(base, payload) == buckets
    assert pack_count_runs({}) == (0, "")
    assert unpack_count_runs(0, "") == {}


def test_row_roundtrip_preserves_quantiles():
    values = _lognormal_samples(n=4000, seed=11)
    sketch = QuantileSketch()
    for value in values:
        sketch.add(value)
    row = sketch.to_row("nodeA", "query", "latency", 1.0, 2.0)
    assert len(row[-1]) <= SKETCH_PAYLOAD_WIDTH
    record = {
        "node": row[0], "request_class": row[1], "metric": row[2],
        "window_start": row[3], "window_end": row[4], "count": row[5],
        "zero_count": row[6], "min_value": row[7], "max_value": row[8],
        "sum_value": row[9], "alpha": row[10], "base_index": row[11],
        "buckets": row[12],
    }
    rebuilt = QuantileSketch.from_row(record)
    for q in (0.5, 0.9, 0.99):
        assert rebuilt.quantile(q) == sketch.quantile(q)


def test_to_row_collapses_to_fit_width():
    sketch = QuantileSketch(alpha=0.005, max_buckets=4096)
    rng = random.Random(17)
    for _ in range(5000):
        sketch.add(rng.lognormvariate(0.0, 4.0))
    row = sketch.to_row("n", "c", "latency", 0.0, 1.0, width=120)
    assert len(row[-1]) <= 120
    assert row[5] == sketch.count  # no samples lost to the squeeze


def _record(node, cls, metric, end, values):
    sketch = QuantileSketch()
    for value in values:
        sketch.add(value)
    row = sketch.to_row(node, cls, metric, end - 1.0, end)
    return {
        "node": row[0], "request_class": row[1], "metric": row[2],
        "window_start": row[3], "window_end": row[4], "count": row[5],
        "zero_count": row[6], "min_value": row[7], "max_value": row[8],
        "sum_value": row[9], "alpha": row[10], "base_index": row[11],
        "buckets": row[12],
    }


def test_store_merges_and_filters():
    store = SketchStore()
    store.ingest(_record("a", "query", "latency", 1.0, [0.001] * 10))
    store.ingest(_record("a", "query", "latency", 2.0, [0.010] * 10))
    store.ingest(_record("b", "query", "latency", 2.0, [0.010] * 10))
    store.ingest(_record("a", "query", "qdepth", 2.0, [4.0] * 10))
    assert store.classes() == ["query"]
    assert store.nodes() == ["a", "b"]
    assert store.merged("query").count == 30
    assert store.merged("query", node="b").count == 10
    # `since` keeps only windows ending at/after the cutoff.
    recent = store.merged("query", since=1.5)
    assert recent.count == 20
    assert recent.quantile(0.5) == pytest.approx(0.010, rel=0.02)
    assert store.merged("nope").count == 0
    assert store.latest_window_end() == 2.0
    assert store.stats() == {"rows_ingested": 4, "series": 3}


def test_store_clear_keeps_cumulative_counter():
    store = SketchStore(history=2)
    for end in (1.0, 2.0, 3.0):
        store.ingest(_record("a", "query", "latency", end, [0.001]))
    key = ("a", "query", "latency")
    assert len(store.series[key]) == 2  # bounded history
    store.clear()
    assert store.series == {}
    assert store.rows_ingested == 3


# ----------------------------------------------------------------------
# update_many: the batch kernel (numpy or fallback loop)
# ----------------------------------------------------------------------

def test_update_many_matches_scalar_adds_exactly_for_counts():
    import random

    rng = random.Random(17)
    values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
    values += [0.0, -3.0, 1e-12]  # zero-bucket cases
    batch = QuantileSketch(alpha=0.02)
    batch.update_many(values)
    scalar = QuantileSketch(alpha=0.02)
    for value in values:
        scalar.add(value)
    assert batch.count == scalar.count
    assert batch.zero_count == scalar.zero_count
    assert batch.min_value == scalar.min_value
    assert batch.max_value == scalar.max_value
    assert abs(batch.sum_value - scalar.sum_value) <= 1e-6 * scalar.sum_value
    # Bucket indices may differ by one ulp-induced slot; quantiles must
    # agree within the sketch's own accuracy guarantee.
    for q in (0.5, 0.9, 0.99):
        expected = scalar.quantile(q)
        got = batch.quantile(q)
        assert abs(got - expected) <= 2 * 0.02 * expected + 1e-12


def test_update_many_python_fallback_equivalent(monkeypatch):
    from repro.observability import sketches as sketches_mod

    values = [0.5, 2.0, 2.0, 8.0, 0.0, 40.0]
    vectorized = QuantileSketch()
    vectorized.update_many(values)
    monkeypatch.setattr(sketches_mod, "_np", None)
    fallback = QuantileSketch()
    fallback.update_many(values)
    assert fallback.count == vectorized.count
    assert fallback.zero_count == vectorized.zero_count
    assert fallback.min_value == vectorized.min_value
    assert fallback.max_value == vectorized.max_value
    for q in (0.5, 0.99):
        assert abs(fallback.quantile(q) - vectorized.quantile(q)) <= \
            2 * 0.01 * fallback.quantile(q) + 1e-12


def test_update_many_empty_and_zero_only():
    sketch = QuantileSketch()
    sketch.update_many([])
    assert sketch.count == 0
    sketch.update_many([0.0, -1.0])
    assert sketch.count == 2
    assert sketch.zero_count == 2
    assert sketch.min_value == 0.0
    assert sketch.max_value == 0.0
    assert sketch.quantile(0.5) == 0.0


def test_update_many_respects_collapse_bound():
    sketch = QuantileSketch(alpha=0.001, max_buckets=8)
    sketch.update_many([1.5 ** i for i in range(64)])
    assert len(sketch.buckets) <= 8
    assert sketch.collapses > 0
    assert sketch.count == 64


def test_update_many_rejects_matrix_input():
    from repro.observability import sketches as sketches_mod

    if sketches_mod._np is None:
        import pytest

        pytest.skip("numpy unavailable")
    import pytest

    with pytest.raises(ValueError):
        QuantileSketch().update_many([[1.0, 2.0], [3.0, 4.0]])
