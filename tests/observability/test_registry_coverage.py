"""Every ``stats()`` source in the tree is accounted for in the registry.

The metrics registry's value is completeness: an operator reading
``/proc/sysprof/metrics`` should never discover later that some
component kept private counters.  This test enumerates every class (and
module) in ``repro`` that defines a ``stats`` callable and asserts each
one is either registered as a source, reachable through a registered
parent's ``stats()`` dict, or explicitly exempted here with a reason.
Adding a new ``stats()`` method without classifying it fails this test.
"""

import importlib
import inspect
import pkgutil

from repro.core import SysProf, SysProfConfig
from repro.faults import FaultInjector
from repro.observability import DiagnosisEngine
from tests.core.helpers import build_monitored_pair

# Registered directly via registry.register_source(...) in
# metrics.build_registry or in the component's own constructor.
REGISTERED = {
    "Kprof",                      # sysprof.kprof.<node>
    "DisseminationDaemon",        # sysprof.daemon.<node>
    "LocalPerformanceAnalyzer",   # sysprof.lpa.<node>.<name>
    "InteractionLPA",
    "SyscallLPA",
    "SketchLPA",
    "CustomAnalyzer",             # via monitor.all_lpas() once installed
    "GlobalPerformanceAnalyzer",  # sysprof.gpa.<node>
    "ZoneGpa",                    # sysprof.zone.<zone>
    "RackTopology",               # sysprof.topology
    "Fabric",                     # sysprof.netsim
    "DiagnosisEngine",            # sysprof.diagnosis (self-registers)
    "FaultInjector",              # sysprof.faults (self-registers)
    "repro.experiments.runner",   # sysprof.runner (module-level stats)
    "Simulator",                  # sysprof.sim (engine counters)
    "TimeSeriesRecorder",         # sysprof.recorder (service supervisor)
    "AnomalyMonitor",             # sysprof.anomaly (service supervisor)
    "Supervisor",                 # sysprof.service (self-registers)
}

# Surfaced through a registered parent's stats() dict, not as their own
# prefix — their numbers are already in the exposition text.
INDIRECT = {
    "DoubleBuffer",    # lpa.stats() nests buffer counters
    "FrameDecoder",    # gpa.stats() folds frames/records/filter counters
    "SketchStore",     # gpa.stats() exposes sketch_rows / sketch_series
    "CalendarQueue",   # Simulator.stats() folds store_* counters
    "HeapStore",       # Simulator.stats() folds store_* counters
    "ChannelPublisher",  # daemon.stats() / zone_gpa.stats() flatten its counters
    "ParentLink",      # publisher.stats() nests it under "parent_link"
}

# Not monitoring-plane components: application/workload objects whose
# stats() are experiment results, plus the trace exporter whose output
# is a Chrome trace document rather than counters.
EXEMPT = {
    "ForwardingProxy", "NfsServer", "VirtualStorageService",
    "DbServer", "ServletServer", "RubisSite",
    "RequestDispatcher", "DwcsScheduler", "DwcsStream",
    "SpanTracer",
}


def _stats_components():
    """All (qualified name, kind) pairs in repro defining a stats callable."""
    import repro

    found = set()
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue
        module = importlib.import_module(info.name)
        for name, obj in inspect.getmembers(module, inspect.isclass):
            if obj.__module__ == info.name and "stats" in obj.__dict__:
                found.add(name)
        stats = module.__dict__.get("stats")
        if inspect.isfunction(stats) and stats.__module__ == info.name:
            found.add(info.name)
    return found


def test_every_stats_source_is_classified():
    components = _stats_components()
    accounted = REGISTERED | INDIRECT | EXEMPT
    unclassified = components - accounted
    assert not unclassified, (
        "components with stats() but no registry classification: {} — "
        "register them in build_registry (or their constructor) and add "
        "them to REGISTERED, or justify them in INDIRECT/EXEMPT".format(
            sorted(unclassified)
        )
    )
    # Stale entries rot the contract in the other direction.
    vanished = accounted - components
    assert not vanished, "classified but no longer defined: {}".format(
        sorted(vanished)
    )


def test_registered_components_have_live_prefixes():
    """A maximal installation really does register one prefix per class."""
    config = SysProfConfig(
        eviction_interval=0.05, syscall_stats=True, latency_sketches=True
    )
    cluster, sysprof = build_monitored_pair(config=config)
    DiagnosisEngine(sysprof, rules=["p99(query) < 999999s"])
    FaultInjector(cluster, sysprof=sysprof)
    prefixes = sysprof.metrics.source_prefixes()
    for expected in (
        "sysprof.kprof.server",
        "sysprof.daemon.server",
        "sysprof.lpa.server.interaction-lpa",
        "sysprof.lpa.server.nodestats-lpa",
        "sysprof.lpa.server.syscall-lpa",
        "sysprof.lpa.server.sketch-lpa",
        "sysprof.gpa.mgmt",
        "sysprof.netsim",
        "sysprof.sim",
        "sysprof.diagnosis",
        "sysprof.faults",
        "sysprof.query",
        "sysprof.runner",
    ):
        assert expected in prefixes, expected


def test_federated_install_registers_zone_and_topology_prefixes():
    """Zone GPAs and the rack topology surface in /proc/sysprof/metrics."""
    from tests.core.test_federation import build_federated

    cluster, sysprof = build_federated()
    cluster.run(until=2.0)
    prefixes = sysprof.metrics.source_prefixes()
    for expected in (
        "sysprof.zone.r0",
        "sysprof.zone.r1",
        "sysprof.topology",
        "sysprof.gpa.mgmt",
    ):
        assert expected in prefixes, expected
    text = sysprof.metrics.render()
    # Per-tier ingress bytes and merge counters are in the exposition.
    assert "sysprof.zone.r0.ingress_bytes" in text
    assert "sysprof.zone.r0.sketch_merges" in text
    assert "sysprof.gpa.mgmt.ingress_bytes" in text
    assert "sysprof.topology.racks" in text
