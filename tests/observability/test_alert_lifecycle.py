"""Alert-lifecycle edges: hysteresis re-fires, listener events, live
retune, anomaly/rule coexistence, and stale dashboard rows.

These pin the contracts the live service mode leans on: ids are unique
and monotone across rule and anomaly alerts, every fire/clear reaches
subscribed listeners exactly once, a retune resolves the alerts of
rules it removes, and a value that dips inside the ``clear_after``
window does *not* resolve-and-refire — hysteresis absorbs the dip.
"""

import pytest

from repro.core import SysProfConfig
from repro.observability import DiagnosisEngine
from repro.observability.slo import SloRule
from tests.core.helpers import build_monitored_pair, drive_traffic


def _sketching_pair(**config_kwargs):
    config = SysProfConfig(
        eviction_interval=0.05, latency_sketches=True, **config_kwargs
    )
    return build_monitored_pair(config=config)


# ---------------------------------------------------------------------------
# hysteresis edges (pure SloRule state machine)
# ---------------------------------------------------------------------------


def test_dip_inside_clear_window_does_not_resolve():
    """fire -> one good sample -> bad again: the alert must stay up."""
    rule = SloRule("p95(q) < 10ms", fire_after=2, clear_after=2)
    assert rule.update(0.020) is None     # violation 1 of 2
    assert rule.update(0.020) == "fire"   # violation 2 of 2
    assert rule.update(0.001) is None     # clear evidence 1 of 2...
    assert rule.update(0.020) is None     # ...wiped by the relapse
    assert rule.firing
    # Only clear_after *consecutive* good samples resolve.
    assert rule.update(0.001) is None
    assert rule.update(0.001) == "clear"
    assert not rule.firing


def test_refire_after_clear_needs_full_fire_hysteresis():
    """fire -> clear -> violations again: re-fires only after
    ``fire_after`` fresh consecutive violations (counters were reset)."""
    rule = SloRule("p95(q) < 10ms", fire_after=2, clear_after=2)
    assert rule.update(0.020) is None
    assert rule.update(0.020) == "fire"
    assert rule.update(0.001) is None
    assert rule.update(0.001) == "clear"
    # Immediately violated again, inside what would have been the old
    # clear window: one violation arms, the second fires.
    assert rule.update(0.020) is None
    assert rule.firing is False
    assert rule.update(0.020) == "fire"


def test_clear_threshold_is_stricter_than_fire_threshold():
    """A value between clear_factor*threshold and threshold neither
    fires (objective holds) nor clears (hysteresis band)."""
    rule = SloRule("p95(q) < 10ms", fire_after=1, clear_after=1,
                   clear_factor=0.9)
    assert rule.update(0.020) == "fire"
    for _ in range(5):
        assert rule.update(0.0095) is None  # in the band: still firing
    assert rule.firing
    assert rule.update(0.0085) == "clear"   # under 0.9 * 10ms


# ---------------------------------------------------------------------------
# engine-level: re-fire produces a fresh alert + events, ids are unique
# ---------------------------------------------------------------------------


def _quiet_engine(**engine_kwargs):
    """An installed engine whose rule never fires on its own."""
    cluster, sysprof = _sketching_pair()
    engine = DiagnosisEngine(
        sysprof, rules=["p99(query) < 999999s"], **engine_kwargs
    )
    drive_traffic(cluster, sysprof)
    return cluster, sysprof, engine


def test_fire_clear_refire_yields_distinct_alert_ids_and_events():
    cluster, sysprof = _sketching_pair()
    rule = SloRule("p50(query) < 1us", fire_after=1, clear_after=1)
    engine = DiagnosisEngine(
        sysprof, rules=[rule], lookback=0.5, eval_interval=0.05
    )
    events = []
    engine.add_listener(events.append)
    drive_traffic(cluster, sysprof)  # burst ends, window drains -> clear
    assert engine.alerts_fired == 1 and engine.alerts_resolved == 1
    # Manually re-violate after the clear: a *new* Alert object with a
    # larger id, not a resurrection of the first.
    now = cluster.sim.now
    engine._on_fire(rule, 0.5, now)
    assert engine.alerts_fired == 2
    first, second = engine.alerts
    assert first is not second
    assert first.id == 1 and second.id == 2
    states = [(e["state"], e["alert"]["id"]) for e in events]
    assert states == [("fire", 1), ("clear", 1), ("fire", 2)]


def test_anomaly_and_rule_alerts_coexist_without_id_collision():
    cluster, sysprof = _sketching_pair()
    rule = SloRule("p50(query) < 1us", fire_after=1, clear_after=1)
    engine = DiagnosisEngine(
        sysprof, rules=[rule], lookback=10.0, eval_interval=0.05
    )
    events = []
    engine.add_listener(events.append)
    drive_traffic(cluster, sysprof, count=250)  # rule alert stays up
    assert engine.active and engine.alerts_fired == 1
    # An anomaly alert on the *same* node joins the active set.
    anomaly = engine.external_fire(
        "anomaly:rate(sysprof.node.server.cpu_busy)", 12.5,
        blame={"node": "server", "stage": "anomaly"},
    )
    assert len(engine.active) == 2
    ids = [alert.id for alert in engine.alerts]
    assert len(set(ids)) == len(ids) == 2
    assert anomaly.source == "anomaly"
    assert engine.alerts[0].source == "rule"
    assert engine.anomaly_alerts == 1
    # The anomaly fired against an already-drilled node: observation
    # only, the rule's drill episode is untouched and no new one opened.
    assert len(engine.drill_log) == 1
    # Clearing the anomaly leaves the rule alert (same blamed node) up
    # and drilled.
    engine.external_clear("anomaly:rate(sysprof.node.server.cpu_busy)")
    assert list(engine.active) == [rule.name]
    assert sysprof.controller.drilled_nodes() == ["server"]
    assert [e["state"] for e in events] == ["fire", "fire", "clear"]
    # Dashboard renders both sources' describe() lines while active.
    assert engine.stats()["anomaly_alerts"] == 1


def test_external_fire_is_idempotent_while_active():
    cluster, sysprof, engine = _quiet_engine()
    first = engine.external_fire("anomaly:zscore(app.x)", 9.0)
    second = engine.external_fire("anomaly:zscore(app.x)", 11.0)
    assert first is second
    assert engine.alerts_fired == 1
    assert engine.external_clear("anomaly:zscore(app.x)") is first
    assert engine.external_clear("anomaly:zscore(app.x)") is None


# ---------------------------------------------------------------------------
# live retune
# ---------------------------------------------------------------------------


def test_set_rules_preserves_state_of_unchanged_rules():
    cluster, sysprof = _sketching_pair()
    rule = SloRule("p50(query) < 1us", fire_after=1, clear_after=1)
    engine = DiagnosisEngine(
        sysprof, rules=[rule], lookback=10.0, eval_interval=0.05
    )
    drive_traffic(cluster, sysprof, count=250)
    assert engine.active
    kept_names = engine.set_rules(
        ["p50(query) < 1us", "p99(query) < 999999s"]
    )
    assert kept_names == ["p50(query) < 1us", "p99(query) < 999999s"]
    # The same (still-firing) rule object survived the retune.
    assert engine.rules[0] is rule
    assert rule.firing
    assert engine.active
    assert engine.retunes == 1


def test_set_rules_resolves_alerts_of_removed_rules_and_restores():
    cluster, sysprof = _sketching_pair()
    rule = SloRule("p50(query) < 1us", fire_after=1, clear_after=1)
    engine = DiagnosisEngine(
        sysprof, rules=[rule], lookback=10.0, eval_interval=0.05
    )
    events = []
    engine.add_listener(events.append)
    drive_traffic(cluster, sysprof, count=250)
    assert engine.active and sysprof.controller.drilled_nodes() == ["server"]
    engine.set_rules(["p99(query) < 999999s"])
    assert not engine.active
    assert engine.alerts_resolved == 1
    assert sysprof.controller.drilled_nodes() == []
    assert [e["state"] for e in events] == ["fire", "clear"]
    daemon = sysprof.monitor("server").daemon
    assert daemon.eviction_interval == pytest.approx(0.05)


def test_add_and_remove_rule():
    cluster, sysprof, engine = _quiet_engine()
    engine.add_rule("p95(query) < 1s")
    assert [r.name for r in engine.rules] == [
        "p99(query) < 999999s", "p95(query) < 1s"
    ]
    with pytest.raises(ValueError, match="duplicate"):
        engine.add_rule("p95(query)  <  1s")  # normalizes to the same text
    assert engine.remove_rule("p95(query) < 1s") is True
    assert engine.remove_rule("p95(query) < 1s") is False
    assert [r.name for r in engine.rules] == ["p99(query) < 999999s"]


def test_listeners_can_be_removed():
    cluster, sysprof, engine = _quiet_engine()
    events = []
    engine.add_listener(events.append)
    engine.remove_listener(events.append)  # bound method: fresh object
    engine._listeners.clear()
    fn = events.append
    engine.add_listener(fn)
    engine.external_fire("anomaly:x(y)", 1.0)
    engine.remove_listener(fn)
    engine.external_clear("anomaly:x(y)")
    assert [e["state"] for e in events] == ["fire"]


# ---------------------------------------------------------------------------
# dashboard staleness rows (PR 8 eviction follow-up)
# ---------------------------------------------------------------------------


@pytest.fixture()
def ledger():
    from repro.observability import ledger as cpu_ledger

    led = cpu_ledger.install()
    yield led
    cpu_ledger.uninstall()


def test_dashboard_marks_dead_member_rows_stale(ledger):
    cluster, sysprof = _sketching_pair()
    DiagnosisEngine(sysprof, rules=["p99(query) < 999999s"])
    drive_traffic(cluster, sysprof)
    engine = sysprof.gpa.diagnosis
    live = engine.dashboard()
    server_rows = [
        line for line in live.splitlines() if line.strip().startswith("server")
    ]
    assert server_rows and "(stale)" not in server_rows[0]
    # The daemon dies; its ledger rows persist but telemetry stops.
    sysprof.monitor("server").daemon.kill()
    later = cluster.sim.now + 10.0 * sysprof.gpa.stale_threshold
    stale_text = engine.dashboard(now=later)
    server_rows = [
        line for line in stale_text.splitlines()
        if line.strip().startswith("server")
    ]
    assert server_rows and "(stale)" in server_rows[0]
    # Unmonitored nodes (client, the GPA host) are never marked.
    assert "client (stale)" not in stale_text
    assert "mgmt (stale)" not in stale_text
