"""Attribution-ledger invariants: category sums, sticky tasks, idle."""

import pytest

from repro.observability import ledger as cpu_ledger
from repro.observability.ledger import CATEGORIES, CpuLedger
from tests.core.helpers import build_monitored_pair, drive_traffic


@pytest.fixture
def ledger():
    led = cpu_ledger.install()
    yield led
    cpu_ledger.uninstall()


def test_install_uninstall_lifecycle():
    assert cpu_ledger.active() is None
    led = cpu_ledger.install()
    assert cpu_ledger.active() is led
    cpu_ledger.uninstall()
    assert cpu_ledger.active() is None


def test_kernels_built_without_ledger_carry_none():
    cluster, _sysprof = build_monitored_pair()
    assert cluster.node("server").kernel.ledger is None


def test_breakdown_sums_to_cpu_busy_per_node(ledger):
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof)
    for name in ("client", "server", "mgmt"):
        kernel = cluster.node(name).kernel
        breakdown = ledger.breakdown(name, include_idle=False)
        assert sum(breakdown.values()) == pytest.approx(
            kernel.cpu.busy_time, rel=1e-9, abs=1e-15
        )
        assert ledger.busy_total(name) == pytest.approx(
            kernel.cpu.busy_time, rel=1e-9, abs=1e-15
        )
        # No category ever goes negative.
        for category, seconds in breakdown.items():
            assert seconds >= 0.0, (name, category, seconds)


def test_monitored_node_shows_monitoring_cost(ledger):
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof)
    server = ledger.breakdown("server", include_idle=False)
    # Kprof probes, LPA callbacks, and the daemon all burned CPU.
    assert server["probe"] > 0.0
    assert server["analyzer"] > 0.0
    assert server["dissemination"] > 0.0
    assert 0.0 < ledger.monitoring_share("server") < 1.0
    # The unmonitored client runs no probes and no daemon.
    client = ledger.breakdown("client", include_idle=False)
    assert client["probe"] == 0.0
    assert client["dissemination"] == 0.0
    assert client["workload"] > 0.0
    assert client["syscall"] > 0.0
    assert client["netstack"] > 0.0


def test_idle_is_derived_not_accumulated(ledger):
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof)
    kernel = cluster.node("server").kernel
    breakdown = ledger.breakdown("server", include_idle=True)
    expected_idle = kernel.sim.now * kernel.cpu_count - kernel.cpu.busy_time
    assert breakdown["idle"] == pytest.approx(expected_idle)
    assert set(breakdown) == set(CATEGORIES)


def test_charge_accumulates_plainly():
    led = CpuLedger()
    led.charge("n", "workload", 1.0)
    led.charge("n", "workload", 0.5)
    led.charge("n", "probe", 0.25)
    assert led.breakdown("n", include_idle=False)["workload"] == 1.5
    assert led.busy_total("n") == 1.75
    assert led.monitoring_time("n") == 0.25
    assert led.monitoring_share("n") == pytest.approx(0.25 / 1.75)


def test_table_rows_shape():
    led = CpuLedger()
    led.charge("a", "workload", 0.002)
    rows = led.table()
    assert len(rows) == 1
    # node + 7 non-idle categories + busy + monitoring %
    assert len(rows[0]) == 10
    assert rows[0][0] == "a"
