"""The ring-buffer time-series recorder over the metrics registry."""

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.recorder import TimeSeriesRecorder


def build_registry(state):
    registry = MetricsRegistry()
    registry.counter("app.requests", fn=lambda: state["requests"])
    registry.gauge("app.depth", fn=lambda: state["depth"])
    registry.gauge("other.level", fn=lambda: state["level"])
    return registry


def test_snapshot_stamps_sample_ts():
    registry = build_registry({"requests": 1, "depth": 2, "level": 3})
    assert registry.last_sample_ts is None
    snap = registry.snapshot(4.5)
    assert snap["ts"] == 4.5
    assert registry.last_sample_ts == 4.5
    assert snap["metrics"]["app.requests"] == ("counter", 1)


def test_sample_appends_points_with_scrape_ts():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(build_registry(state))
    recorder.sample(1.0)
    state["requests"] = 5
    recorder.sample(2.0)
    assert recorder.series("app.requests") == [(1.0, 0), (2.0, 5)]
    assert recorder.latest("app.depth") == (2.0, 0)
    assert recorder.kind("app.requests") == "counter"
    assert recorder.kind("app.depth") == "gauge"
    assert recorder.samples == 2


def test_include_exclude_patterns():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(
        build_registry(state), include=["app.*"], exclude=["app.depth"]
    )
    recorder.sample(0.0)
    assert recorder.names() == ["app.requests"]
    assert recorder.series("other.level") == []
    assert recorder.names("app.*") == ["app.requests"]


def test_ring_capacity_bounds_memory():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(build_registry(state), capacity=4)
    for tick in range(10):
        state["requests"] = tick
        recorder.sample(float(tick))
    points = recorder.series("app.requests")
    assert len(points) == 4
    assert points[0] == (6.0, 6)
    assert points[-1] == (9.0, 9)


def test_capacity_validation():
    with pytest.raises(ValueError):
        TimeSeriesRecorder(MetricsRegistry(), capacity=1)


def test_rate_is_per_second_derivative():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(build_registry(state))
    for tick, total in enumerate((0, 10, 30, 30)):
        state["requests"] = total
        recorder.sample(tick * 0.5)
    assert recorder.rate("app.requests") == [
        (0.5, 20.0), (1.0, 40.0), (1.5, 0.0)
    ]


def test_stale_flags_frozen_series_only():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(build_registry(state))
    recorder.sample(0.0)
    for tick in range(1, 6):
        state["depth"] = tick  # depth keeps moving; requests freezes
        recorder.sample(float(tick))
    stale = recorder.stale(now=5.0, threshold=2.0)
    assert "app.requests" in stale
    assert stale["app.requests"] == pytest.approx(5.0)
    assert "app.depth" not in stale
    # A frozen series that moves again stops being stale.
    state["requests"] = 99
    recorder.sample(6.0)
    assert "app.requests" not in recorder.stale(now=6.0, threshold=2.0)


def test_series_since_window_and_values():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(build_registry(state))
    for tick in range(5):
        state["requests"] = tick * tick
        recorder.sample(float(tick))
    assert recorder.series("app.requests", since=3.0) == [(3.0, 9), (4.0, 16)]
    assert recorder.values("app.requests", since=3.0) == [9, 16]


def test_stats_counters():
    state = {"requests": 0, "depth": 0, "level": 0}
    recorder = TimeSeriesRecorder(build_registry(state), include=["app.*"])
    recorder.sample(0.0)
    recorder.sample(1.0)
    stats = recorder.stats()
    assert stats["samples"] == 2
    assert stats["series"] == 2
    assert stats["points_recorded"] == 4
