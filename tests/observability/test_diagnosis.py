"""DiagnosisEngine behavior over a live monitored pair."""

import pytest

from repro.core import SysProfConfig
from repro.observability import DiagnosisEngine
from repro.observability.slo import SloRule
from tests.core.helpers import build_monitored_pair, drive_traffic


def _sketching_pair(**config_kwargs):
    config = SysProfConfig(
        eviction_interval=0.05, latency_sketches=True, **config_kwargs
    )
    return build_monitored_pair(config=config)


def test_engine_requires_gpa():
    cluster, sysprof = build_monitored_pair(gpa_node=None)
    with pytest.raises(ValueError, match="GPA"):
        DiagnosisEngine(sysprof)


def test_fires_blames_and_drills():
    cluster, sysprof = _sketching_pair()
    engine = DiagnosisEngine(
        sysprof, rules=["p50(query) < 1us"], lookback=1.0, eval_interval=0.05
    )
    # Enough requests that traffic outlasts the run: the violation is
    # still live when the simulation stops.
    drive_traffic(cluster, sysprof, count=250)
    assert engine.evaluations > 0
    assert engine.alerts_fired == 1
    alert = engine.alerts[0]
    assert alert.firing
    assert alert.blame["node"] == "server"
    assert alert.blame["stage"]
    # The blamed node was drilled down: shorter eviction interval, and
    # the daemon's gauge reflects it live.
    assert engine.drill_log and engine.drill_log[0]["node"] == "server"
    daemon = sysprof.monitor("server").daemon
    assert daemon.eviction_interval == pytest.approx(0.05 / 4)
    assert sysprof.controller.drilled_nodes() == ["server"]


def test_quiet_class_resolves_and_restores():
    cluster, sysprof = _sketching_pair()
    engine = DiagnosisEngine(
        sysprof, rules=["p50(query) < 1us"], lookback=0.5, eval_interval=0.05
    )
    # The default 10-request burst ends ~0.3s in; the lookback window
    # then drains, the rule measures None — documented as clear evidence —
    # and the drill-down unwinds online (nodestats rows keep driving
    # evaluations after the request class goes quiet).
    drive_traffic(cluster, sysprof)
    assert engine.alerts_fired == 1
    assert engine.alerts_resolved == 1
    assert not engine.active
    episode = engine.drill_log[0]
    assert episode["restored_at"] is not None
    daemon = sysprof.monitor("server").daemon
    assert daemon.eviction_interval == pytest.approx(0.05)
    assert sysprof.controller.drilled_nodes() == []


def test_never_firing_rule_stays_quiet():
    cluster, sysprof = _sketching_pair()
    engine = DiagnosisEngine(sysprof, rules=["p99(query) < 999999s"])
    drive_traffic(cluster, sysprof)
    assert engine.evaluations > 0
    assert engine.alerts == []
    assert engine.drill_log == []


def test_engine_registers_in_metrics_and_detaches():
    cluster, sysprof = _sketching_pair()
    engine = DiagnosisEngine(sysprof, rules=["p99(query) < 999999s"])
    assert "sysprof.diagnosis" in sysprof.metrics.source_prefixes()
    collected = sysprof.metrics.collect()
    assert collected["sysprof.diagnosis.rules"][1] == 1
    assert sysprof.gpa.diagnosis is engine
    engine.detach()
    assert sysprof.gpa.diagnosis is None


def test_dashboard_renders_sections():
    cluster, sysprof = _sketching_pair()
    engine = DiagnosisEngine(
        sysprof, rules=["p50(query) < 1us"], lookback=10.0
    )
    drive_traffic(cluster, sysprof)
    text = engine.dashboard()
    assert "sysprof diagnosis @" in text
    assert "query" in text            # the percentile table row
    assert "[FIRING]" in text
    assert "drilled nodes: server" in text


def test_staleness_rule_blames_quiet_node():
    cluster, sysprof = _sketching_pair()
    rule = SloRule("staleness(server) < 1s", fire_after=1)
    engine = DiagnosisEngine(sysprof, rules=[rule], eval_interval=0.05)
    drive_traffic(cluster, sysprof)
    assert not engine.active  # telemetry flowing: rule holds
    # Daemon dies; nodestats stop arriving; staleness crosses 1s.
    sysprof.monitor("server").daemon.kill()
    engine.evaluate(cluster.sim.now + 5.0)
    assert engine.active
    alert = next(iter(engine.active.values()))
    assert alert.blame == {
        "node": "server", "stage": "stale", "reason": "telemetry quiet"
    }
