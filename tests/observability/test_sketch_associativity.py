"""Tier-shape invariance of sketch merging (federation satellite 3).

A federation tree merges each node's sketch at its zone, then merges the
zone sketches at the root.  DDSketch merging is bucket addition, so the
grouping must not matter: any tier shape over the same per-node sketches
yields the same root sketch (exactly, when no collapse fires), and stays
within the 2*alpha relative-error bound of the exact stream regardless.
"""

import random

import pytest

from repro.observability.sketches import QuantileSketch

NODES = 16
SAMPLES = 400

#: Tier shapes: how the 16 per-node sketches are grouped before the
#: final root merge.  ``flat`` is the single-GPA baseline; the nested
#: shape models a two-level zone hierarchy.
SHAPES = {
    "two-zones": [list(range(0, 8)), list(range(8, 16))],
    "four-zones": [list(range(i, i + 4)) for i in range(0, 16, 4)],
    "nested": [
        [list(range(0, 4)), list(range(4, 8))],
        [list(range(8, 12)), list(range(12, 16))],
    ],
}


def _node_values(seed):
    rng = random.Random(seed)
    values = []
    for node in range(NODES):
        mu = -6.0 + 0.2 * (node % 5)  # heterogeneous node profiles
        values.append(
            [rng.lognormvariate(mu, 1.0) for _ in range(SAMPLES)]
        )
    return values


def _sketch_of(values, **kwargs):
    sketch = QuantileSketch(**kwargs)
    sketch.update_many(values)
    return sketch


def _merge_shape(shape, node_sketches):
    """Merge leaves bottom-up: ints are node indices, lists are zones."""
    merged = QuantileSketch(alpha=node_sketches[0].alpha,
                            max_buckets=node_sketches[0].max_buckets)
    for part in shape:
        if isinstance(part, int):
            merged.merge(node_sketches[part])
        else:
            merged.merge(_merge_shape(part, node_sketches))
    return merged


@pytest.mark.parametrize("shape_name", sorted(SHAPES))
def test_tiered_merge_matches_flat_merge_exactly(shape_name):
    """With no collapse pressure, grouping is exactly associative."""
    node_sketches = [
        _sketch_of(values, max_buckets=4096)
        for values in _node_values(seed=23)
    ]
    flat = _merge_shape(list(range(NODES)), node_sketches)
    tiered = _merge_shape(SHAPES[shape_name], node_sketches)
    assert tiered.count == flat.count
    assert tiered.zero_count == flat.zero_count
    assert tiered.buckets == flat.buckets
    for q in (0.5, 0.95, 0.99):
        assert tiered.quantile(q) == flat.quantile(q)


@pytest.mark.parametrize("shape_name", sorted(SHAPES))
@pytest.mark.parametrize("seed", (23, 24, 25))
def test_tiered_merge_keeps_error_bound_under_collapse(shape_name, seed):
    """Even with tight bucket budgets forcing collapses at every tier,
    the federated estimate stays within 2% of the exact stream at the
    tail.  (Collapse folds *low* buckets by design, so only the upper
    quantiles — the ones SLO rules watch — carry the guarantee.)"""
    import math

    per_node = _node_values(seed=seed)
    node_sketches = [
        _sketch_of(values, alpha=0.01, max_buckets=128)
        for values in per_node
    ]
    tiered = _merge_shape(SHAPES[shape_name], node_sketches)
    everything = sorted(v for values in per_node for v in values)
    assert tiered.count == len(everything)
    for q in (0.95, 0.99):
        exact = everything[math.ceil(q * (len(everything) - 1))]
        assert abs(tiered.quantile(q) - exact) / exact <= 0.02, (
            "shape={} q={}".format(shape_name, q)
        )
    # And the grouping itself still doesn't matter relative to a flat
    # merge under the same budget: p99 within the 2*alpha envelope.
    flat = _merge_shape(list(range(NODES)), node_sketches)
    assert tiered.quantile(0.99) == pytest.approx(
        flat.quantile(0.99), rel=0.02
    )
