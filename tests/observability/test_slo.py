"""SLO rule grammar, measurement plumbing, and the hysteresis machine."""

import pytest

from repro.observability.slo import (
    Alert,
    SloParseError,
    SloRule,
    parse_rules,
)


def test_latency_percentile_forms():
    rule = SloRule("p99(rubis.search) < 80ms")
    assert rule.kind == "latency"
    assert rule.quantile == pytest.approx(0.99)
    assert rule.request_class == "rubis.search"
    assert rule.node is None
    assert rule.op == "<"
    assert rule.threshold == pytest.approx(0.080)

    pinned = SloRule("p95(nfs-write@proxy) <= 8ms")
    assert pinned.node == "proxy"
    assert pinned.op == "<="
    assert pinned.threshold == pytest.approx(0.008)


def test_qdepth_cpu_share_and_staleness_forms():
    qdepth = SloRule("qdepth_p90(nfs-write@backend1) < 32")
    assert qdepth.kind == "qdepth"
    assert qdepth.quantile == pytest.approx(0.90)
    assert qdepth.threshold == 32.0

    share = SloRule("cpu_share(backend1, monitoring) < 0.05")
    assert share.kind == "cpu_share"
    assert share.node == "backend1"
    assert share.category == "monitoring"

    stale = SloRule("staleness(backend1) < 2s")
    assert stale.kind == "staleness"
    assert stale.threshold == 2.0

    defaulted = SloRule("staleness(backend1)")
    assert defaulted.threshold is None
    assert defaulted.op == "<"


def test_threshold_units():
    assert SloRule("p50(x) < 250us").threshold == pytest.approx(250e-6)
    assert SloRule("p50(x) < 1.5s").threshold == pytest.approx(1.5)
    assert SloRule("p50(x) < 7").threshold == 7.0


@pytest.mark.parametrize("text", [
    "p50(x)",                    # percentile needs a threshold
    "cpu_share(a, workload)",    # cpu_share needs a threshold
    "p101(x) < 1ms",             # quantile out of range for the grammar
    "latency(x) < 1ms",          # unknown signal
    "p50(x) < fast",             # unparseable threshold
    "",
])
def test_rejected_rules(text):
    with pytest.raises(SloParseError):
        SloRule(text)


class _FakeGpa:
    def __init__(self, stale_threshold=1.0):
        self.stale_threshold = stale_threshold
        self.node_stats = {}
        self.clock_table = None


def test_staleness_threshold_defaults_to_gpa():
    rule = SloRule("staleness(backend1)")
    gpa = _FakeGpa(stale_threshold=2.5)
    assert rule.effective_threshold(gpa) == 2.5
    explicit = SloRule("staleness(backend1) < 4s")
    assert explicit.effective_threshold(gpa) == 4.0


def test_staleness_measurement_uses_last_nodestats():
    rule = SloRule("staleness(backend1)")
    gpa = _FakeGpa()
    assert rule.measure(gpa, now=10.0) is None  # no history yet
    gpa.node_stats["backend1"] = [{"ts": 7.0}]
    assert rule.measure(gpa, now=10.0) == pytest.approx(3.0)


def test_hysteresis_fire_and_clear():
    rule = SloRule("p95(x) < 10ms", fire_after=2, clear_after=2,
                   clear_factor=0.9)
    # One violation is not enough.
    assert rule.update(0.020) is None
    assert not rule.firing
    assert rule.update(0.020) == "fire"
    assert rule.firing
    # Meeting the objective but not the stricter clear bound: no resolve.
    assert rule.update(0.0095) is None        # < 10ms but >= 9ms
    assert rule.update(0.0095) is None
    assert rule.firing
    # Two consecutive evaluations under the clear bound resolve it.
    assert rule.update(0.0080) is None
    assert rule.update(0.0080) == "clear"
    assert not rule.firing


def test_hysteresis_violation_streak_resets():
    rule = SloRule("p95(x) < 10ms", fire_after=3)
    assert rule.update(0.020) is None
    assert rule.update(0.020) is None
    assert rule.update(0.001) is None   # streak broken
    assert rule.update(0.020) is None
    assert rule.update(0.020) is None
    assert rule.update(0.020) == "fire"


def test_missing_data_counts_as_met():
    rule = SloRule("p95(x) < 10ms", fire_after=1, clear_after=1)
    assert rule.update(None) is None
    assert not rule.firing
    assert rule.update(0.020) == "fire"
    # While firing, no data is clear evidence (the class went quiet).
    assert rule.update(None) == "clear"


def test_greater_than_direction():
    rule = SloRule("cpu_share(a, workload) > 0.5", fire_after=1, clear_after=1,
                   clear_factor=0.9)
    assert rule.update(0.3) == "fire"      # objective violated
    # Clear bound is stricter in the rule's favor: 0.5 / 0.9 ≈ 0.556.
    assert rule.update(0.52) is None
    assert rule.update(0.60) == "clear"


def test_format_value_and_alert_describe():
    rule = SloRule("p95(nfs-write) < 8ms")
    assert rule.format_value(0.0123) == "12.30ms"
    assert rule.format_value(None) == "n/a"
    assert SloRule("staleness(a) < 2s").format_value(1.5) == "1.50s"
    assert SloRule("cpu_share(a, b) < 0.5").format_value(0.25) == "25.0%"

    alert = Alert(rule, 2.0, 0.016,
                  blame={"node": "backend1", "stage": "kernel-wait"})
    text = alert.describe()
    assert "[FIRING]" in text and "blame=backend1/kernel-wait" in text
    alert.resolve(4.0, 0.004)
    assert alert.state == "resolved"
    assert "resolved t=4.00s" in alert.describe()
    as_dict = alert.as_dict()
    assert as_dict["fired_at"] == 2.0
    assert as_dict["blame"]["node"] == "backend1"


def test_parse_rules_passthrough():
    ready = SloRule("p50(x) < 1ms")
    rules = parse_rules([ready, "p99(y) < 2ms"], fire_after=3)
    assert rules[0] is ready
    assert rules[1].fire_after == 3
