"""Shared fixtures."""

import pytest

from repro.cluster import Cluster
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster():
    """A three-node cluster (a, b with disk, mgmt) on a 1 Gbps LAN."""
    cluster = Cluster(seed=7)
    cluster.add_node("a")
    cluster.add_node("b", with_disk=True)
    cluster.add_node("mgmt")
    return cluster


def run_task(cluster, node_name, fn, *args, limit=60.0):
    """Spawn a task and run the simulation until it finishes."""
    task = cluster.node(node_name).spawn("test-task", fn, *args)
    cluster.sim.run_until_triggered(task.proc, limit=cluster.sim.now + limit)
    return task.exit_value
