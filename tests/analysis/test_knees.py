"""Knee detector behavior on synthetic curves.

Four families the calibration sweeps produce: a clean plateau knee, the
same knee under measurement noise, a pure linear curve (no knee — must
not fabricate one), and a two-step staircase (two knees).  Tolerances
are in x-grid points: the detector cannot be more precise than the
sweep grid it is given.
"""

import random

import pytest

from repro.analysis import find_knee, find_knees, smooth_curve
from repro.analysis.knees import KneePoint


def plateau(xs, capacity):
    """y = min(x, capacity): the saturating-resource shape."""
    return [min(x, capacity) for x in xs]


GRID = [float(x) for x in range(10, 410, 10)]


class TestCleanKnee:
    def test_plateau_knee_located_at_capacity(self):
        knee = find_knee(GRID, plateau(GRID, 200.0), smooth=1)
        assert knee is not None
        assert abs(knee.x - 200.0) <= 10.0  # within one grid step
        assert knee.strength > 0.2

    def test_onset_knee_located_at_capacity(self):
        # Convex shape: zero until capacity, then linear growth (the
        # buffer-overwrite loss curve).  Deviation falls *below* the
        # chord; the detector must still find it.
        ys = [max(0.0, x - 250.0) for x in GRID]
        knee = find_knee(GRID, ys, smooth=1)
        assert knee is not None
        assert abs(knee.x - 250.0) <= 10.0

    def test_knee_point_reports_curve_coordinates(self):
        ys = plateau(GRID, 120.0)
        knee = find_knee(GRID, ys, smooth=1)
        assert isinstance(knee, KneePoint)
        assert knee.y == ys[knee.index]
        assert knee.x == GRID[knee.index]
        assert knee.method == "chord"
        assert knee.to_dict()["x"] == knee.x

    def test_secdiff_method_agrees_on_clean_knee(self):
        knee = find_knee(GRID, plateau(GRID, 200.0), smooth=1, method="secdiff")
        assert knee is not None
        assert abs(knee.x - 200.0) <= 10.0


class TestNoisyKnee:
    def test_knee_survives_five_percent_noise(self):
        rng = random.Random(7)
        ys = [
            y * (1.0 + rng.uniform(-0.05, 0.05))
            for y in plateau(GRID, 200.0)
        ]
        knee = find_knee(GRID, ys, smooth=3)
        assert knee is not None
        # Noise may shift the detection by a couple of grid steps.
        assert abs(knee.x - 200.0) <= 30.0

    def test_smooth_curve_preserves_length_and_mean_level(self):
        rng = random.Random(11)
        ys = [100.0 + rng.uniform(-5, 5) for _ in range(20)]
        smoothed = smooth_curve(ys, window=3)
        assert len(smoothed) == len(ys)
        assert abs(sum(smoothed) / 20 - sum(ys) / 20) < 1.0


class TestNoKnee:
    def test_linear_curve_yields_none_not_a_spurious_knee(self):
        assert find_knee(GRID, [2.5 * x for x in GRID], smooth=1) is None

    def test_linear_with_small_noise_yields_none(self):
        rng = random.Random(3)
        ys = [2.5 * x * (1.0 + rng.uniform(-0.02, 0.02)) for x in GRID]
        assert find_knee(GRID, ys, smooth=3) is None

    def test_flat_curve_yields_none(self):
        assert find_knee(GRID, [7.0] * len(GRID), smooth=1) is None

    def test_too_few_points_yields_none(self):
        assert find_knee([1.0, 2.0], [1.0, 2.0]) is None

    def test_zero_x_span_yields_none(self):
        assert find_knee([5.0] * 10, plateau(GRID, 100.0)[:10]) is None

    def test_find_knees_empty_for_linear(self):
        assert find_knees(GRID, [2.5 * x for x in GRID], smooth=1) == []


class TestTwoKnees:
    @staticmethod
    def staircase(xs):
        """Rise to 100 at x=100, plateau, rise again to 200 at x=300."""
        ys = []
        for x in xs:
            if x <= 100:
                ys.append(x)
            elif x <= 200:
                ys.append(100.0)
            elif x <= 300:
                ys.append(100.0 + (x - 200.0))
            else:
                ys.append(200.0)
        return ys

    def test_both_steps_detected(self):
        knees = find_knees(GRID, self.staircase(GRID), smooth=1,
                           min_separation=0.2)
        assert len(knees) >= 2
        located = sorted(knee.x for knee in knees[:2])
        assert abs(located[0] - 100.0) <= 20.0
        assert abs(located[1] - 300.0) <= 20.0

    def test_strongest_knee_first(self):
        knees = find_knees(GRID, self.staircase(GRID), smooth=1,
                           min_separation=0.2)
        strengths = [knee.strength for knee in knees]
        assert strengths == sorted(strengths, reverse=True)

    def test_single_knee_curve_reports_one(self):
        knees = find_knees(GRID, plateau(GRID, 200.0), smooth=1)
        assert len(knees) == 1
        assert abs(knees[0].x - 200.0) <= 10.0


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError):
        find_knee([1, 2, 3], [1, 2])


def test_unknown_method_raises():
    with pytest.raises(ValueError):
        find_knee(GRID, plateau(GRID, 100.0), method="magic")
