"""Bottleneck diagnosis and time-series helpers."""

import pytest

from repro.analysis import (
    ascii_plot,
    bin_events,
    diagnose_node,
    find_bottleneck,
    moving_average,
    rate_series,
)
from repro.experiments.common import Series, format_table, mean
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_bin_events_counts():
    assert bin_events([0.1, 0.2, 1.5, 2.9], bin_width=1.0) == [
        (0.0, 2), (1.0, 1), (2.0, 1),
    ]


def test_bin_events_window():
    assert bin_events([0.5, 1.5, 2.5], bin_width=1.0, t0=1.0, t1=2.0) == [(1.0, 1)]


def test_bin_events_validation():
    with pytest.raises(ValueError):
        bin_events([], bin_width=0)


def test_rate_series():
    assert rate_series([0.0, 0.1, 0.2], bin_width=0.5) == [(0.0, 6.0)]


def test_moving_average_smooths():
    series = [(0, 0.0), (1, 10.0), (2, 0.0)]
    smoothed = moving_average(series, window=3)
    assert smoothed[1][1] == pytest.approx(10 / 3)
    with pytest.raises(ValueError):
        moving_average(series, window=0)


def test_ascii_plot_renders():
    text = ascii_plot({"a": [(0, 1.0), (1, 2.0)], "b": [(0, 0.5)]}, title="t")
    assert "t" in text and "o=a" in text and "+=b" in text
    assert ascii_plot({}) == "(no data)"


def test_series_helper():
    series = Series("s")
    series.add(1, 2.0)
    series.add(3, 4.0)
    assert series.xs == [1, 3] and series.ys == [2.0, 4.0]


def test_format_table_aligns():
    text = format_table(
        ("name", "value"), [("x", 1.2345), ("longer", 100.0)], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "---" in lines[2]
    assert len(lines) == 5


def test_mean_empty():
    assert mean([]) == 0.0


def test_diagnose_node_and_find_bottleneck():
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=8)
    diagnosis = diagnose_node(sysprof.gpa, "server")
    assert diagnosis.interaction_count == 8
    assert diagnosis.dominant_component == "user"  # 2ms compute dominates
    assert "server" in diagnosis.describe()

    report = find_bottleneck(sysprof.gpa, ["server", "ghost"])
    assert report.bottleneck == "server"
    assert "highest mean local residency" in report.reason
    assert "bottleneck: server" in report.describe()


def test_find_bottleneck_without_data():
    cluster, sysprof = build_monitored_pair()
    report = find_bottleneck(sysprof.gpa, ["server"])
    assert report.bottleneck == "unknown"
