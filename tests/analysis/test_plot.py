"""The shared ASCII renderers behind the dashboard and generated docs."""

from repro.analysis.plot import SPARK_LEVELS, ascii_curve, sparkline


def test_sparkline_empty():
    assert sparkline([]) == ""
    assert sparkline([1.0, 2.0], width=0) == ""


def test_sparkline_monotone_ramp_uses_full_scale():
    line = sparkline(range(10))
    assert len(line) == 10
    assert line[0] == SPARK_LEVELS[0]
    assert line[-1] == SPARK_LEVELS[-1]
    # Heights never decrease on a monotone series.
    ranks = [SPARK_LEVELS.index(ch) for ch in line]
    assert ranks == sorted(ranks)


def test_sparkline_flat_series_renders_mid_scale():
    line = sparkline([5.0] * 6)
    assert line == SPARK_LEVELS[len(SPARK_LEVELS) // 2] * 6


def test_sparkline_width_keeps_trailing_values():
    line = sparkline([0, 0, 0, 10, 10], width=2)
    assert line == SPARK_LEVELS[len(SPARK_LEVELS) // 2] * 2  # both at hi


def test_sparkline_pinned_bounds_clamp():
    line = sparkline([-5.0, 50.0], lo=0.0, hi=10.0)
    assert line[0] == SPARK_LEVELS[0]
    assert line[-1] == SPARK_LEVELS[-1]


def test_sparkline_deterministic():
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    assert sparkline(values) == sparkline(values)


def test_ascii_curve_empty():
    assert ascii_curve([], []) == "(no data)"


def test_ascii_curve_layout_and_labels():
    text = ascii_curve(
        [0, 1, 2, 3], [0.0, 1.0, 4.0, 9.0],
        width=20, height=5, x_label="load", y_label="lat",
    )
    lines = text.splitlines()
    assert lines[0].startswith("lat max 9")
    assert lines[-1].startswith("load: 0 .. 3")
    assert len(lines) == 5 + 3  # height rows + header + axis + footer
    body = "\n".join(lines[1:-2])
    assert "*" in body


def test_ascii_curve_knee_marker():
    text = ascii_curve(
        [0, 1, 2, 3, 4], [1, 1, 1, 5, 5],
        width=21, height=5, knee_x=3,
    )
    assert "|" in text
    assert "knee @ 3" in text


def test_ascii_curve_vertical_fill_on_cliff():
    # A hard step should leave '.' fill between the two plotted rows.
    text = ascii_curve([0, 1], [0.0, 100.0], width=10, height=8)
    assert "." in text


def test_ascii_curve_flat_series():
    text = ascii_curve([0, 1, 2], [2.0, 2.0, 2.0], width=12, height=4)
    assert "(no data)" not in text
    assert "*" in text
