"""Workload modeling from GPA dumps."""

import math
import random

import pytest

from repro.analysis.modeling import (
    ArrivalModel,
    ServiceModel,
    capacity_at_latency,
    fit_class_models,
    load_dump,
    mg1_response_time,
    utilization_forecast,
)
from tests.core.helpers import build_monitored_pair, drive_traffic


def test_arrival_model_recovers_poisson_rate():
    rng = random.Random(5)
    now, stamps = 0.0, []
    for _ in range(5000):
        now += rng.expovariate(50.0)
        stamps.append(now)
    model = ArrivalModel.fit(stamps)
    assert model.rate == pytest.approx(50.0, rel=0.05)
    assert model.looks_poisson


def test_arrival_model_detects_regular_arrivals():
    stamps = [i * 0.02 for i in range(100)]
    model = ArrivalModel.fit(stamps)
    assert model.rate == pytest.approx(50.0, rel=0.01)
    assert model.cv == pytest.approx(0.0, abs=1e-9)
    assert not model.looks_poisson


def test_arrival_model_validation():
    with pytest.raises(ValueError):
        ArrivalModel.fit([1.0])
    with pytest.raises(ValueError):
        ArrivalModel.fit([1.0, 1.0])


def test_service_model_percentiles():
    model = ServiceModel.fit([0.001] * 90 + [0.01] * 10)
    assert model.mean == pytest.approx(0.0019, rel=0.01)
    assert model.p50 == pytest.approx(0.001)
    assert model.p99 == pytest.approx(0.01, rel=0.05)
    with pytest.raises(ValueError):
        ServiceModel.fit([])


def test_mg1_deterministic_matches_md1():
    """cv=0 reduces PK to the M/D/1 formula."""
    service = ServiceModel(count=1, mean=0.01, cv=0.0, p50=0.01, p95=0.01, p99=0.01)
    rate = 50.0  # rho = 0.5
    expected = 0.01 + 0.5 * 0.01 / (2 * (1 - 0.5))
    assert mg1_response_time(rate, service) == pytest.approx(expected)


def test_mg1_saturation_is_infinite():
    service = ServiceModel(count=1, mean=0.01, cv=1.0, p50=0.01, p95=0.01, p99=0.01)
    assert mg1_response_time(100.0, service) == math.inf
    assert mg1_response_time(150.0, service) == math.inf


def test_mg1_monotone_in_rate():
    service = ServiceModel(count=1, mean=0.005, cv=1.0, p50=0.005, p95=0.005,
                           p99=0.005)
    latencies = [mg1_response_time(rate, service) for rate in (10, 50, 100, 150)]
    assert latencies == sorted(latencies)


def test_capacity_at_latency_inverts_mg1():
    service = ServiceModel(count=1, mean=0.005, cv=1.0, p50=0.005, p95=0.005,
                           p99=0.005)
    rate = capacity_at_latency(service, target_latency=0.02)
    assert mg1_response_time(rate, service) == pytest.approx(0.02, rel=0.02)
    assert capacity_at_latency(service, target_latency=0.001) == 0.0


def test_fit_and_forecast_from_live_monitoring(tmp_path):
    """End-to-end: monitored run -> GPA dump -> fitted models -> forecast."""
    cluster, sysprof = build_monitored_pair()
    drive_traffic(cluster, sysprof, count=20)
    dump_path = tmp_path / "gpa.jsonl"
    sysprof.gpa.dump(str(dump_path))

    records = load_dump(str(dump_path))
    assert "interaction" in records
    models = fit_class_models(records["interaction"])
    assert "query" in models
    arrival, service = models["query"]
    # The echo server burns 2 ms per request.
    assert service.mean == pytest.approx(0.002, rel=0.15)
    # Client thinks ~10 ms + ~2.7 ms round trip -> rate ~75-90/s.
    assert 50 < arrival.rate < 120

    demand, utilization = utilization_forecast(models)
    assert utilization == pytest.approx(arrival.rate * service.mean, rel=1e-6)
    assert utilization < 0.5


def test_load_dump_skips_blank_lines(tmp_path):
    path = tmp_path / "d.jsonl"
    path.write_text('{"type": "interaction", "x": 1}\n\n{"type": "nodestats"}\n')
    records = load_dump(str(path))
    assert len(records["interaction"]) == 1
    assert len(records["nodestats"]) == 1
